"""End-to-end daemon tests over real sockets: lifecycle, transports,
observability, shutdown."""

from __future__ import annotations

import pytest

from repro.obs import metric_names
from repro.serve.client import ServeClient, parse_endpoint
from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import PROTOCOL_NAME, PROTOCOL_VERSION


class TestLifecycle:
    def test_full_session_lifecycle(self, client):
        assert client.ping() == {
            "pong": True,
            "protocol": PROTOCOL_NAME,
            "version": PROTOCOL_VERSION,
            "scenarios": ["baseline", "churn", "hostile", "recovery"],
        }
        launched = client.launch(scenario="baseline", seed=11)
        sid = launched["session_id"]
        assert launched["tenant"] == "t-main"

        stepped = client.step(sid, steps=5)
        assert len(stepped["steps"]) == 5
        assert stepped["steps"][0]["kind"] == "launch"

        ran = client.run(sid, cycles=60_000_000)
        assert ran["cycles_advanced"] >= 60_000_000
        assert ran["slices"] >= 1

        doc = client.inspect(sid, metrics=True)
        assert doc["state"] == "running"
        assert doc["seed"] == 11
        assert doc["exits_by_reason"]
        assert "counters" in doc["metrics"]

        trace = client.trace(sid, cursor=0, limit=10)
        assert len(trace["events"]) == 10
        assert trace["recorded"] > 10

        # Cursor advances; replaying from the returned cursor yields the
        # next window, not the same events again.
        again = client.trace(sid, cursor=trace["cursor"], limit=10)
        assert again["events"] != trace["events"]

        killed = client.kill(sid)
        assert killed["session_id"] == sid
        assert client.stats()["registry"]["sessions"] == 0

    def test_two_tenants_interleaved(self, make_client):
        a = make_client("alice")
        b = make_client("bob")
        sa = a.launch(seed=3)["session_id"]
        sb = b.launch(seed=3)["session_id"]
        ra = a.step(sa, steps=10)
        rb = b.step(sb, steps=10)
        # Same seed, same scenario → identical outcomes, even though the
        # two sessions share a daemon.
        assert ra["steps"] == rb["steps"]

    def test_shutdown_request_stops_the_daemon(self):
        daemon = ServeDaemon(tcp=("127.0.0.1", 0))
        thread = daemon.start()
        with ServeClient(daemon.endpoint) as client:
            assert client.shutdown() == {"stopping": True}
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestTransports:
    def test_unix_socket_transport(self, tmp_path):
        path = tmp_path / "covirt.sock"
        daemon = ServeDaemon(socket_path=path)
        daemon.start()
        try:
            assert daemon.endpoint == f"unix:{path}"
            with ServeClient(daemon.endpoint, tenant="ux") as client:
                sid = client.launch(seed=1)["session_id"]
                assert client.step(sid, steps=2)["steps"]
        finally:
            daemon.stop()
        assert not path.exists()  # cleaned up on shutdown

    def test_exactly_one_transport_required(self, tmp_path):
        with pytest.raises(ValueError):
            ServeDaemon()
        with pytest.raises(ValueError):
            ServeDaemon(
                socket_path=tmp_path / "x.sock", tcp=("127.0.0.1", 0)
            )

    def test_parse_endpoint_rejects_garbage(self):
        assert parse_endpoint("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_endpoint("tcp:127.0.0.1:80") == ("tcp", ("127.0.0.1", 80))
        for bad in ("tcp:nohost", "http://x", "unix:", "tcp:1.2.3.4:nan"):
            with pytest.raises(ValueError):
                parse_endpoint(bad)


class TestObservability:
    def test_daemon_metrics_track_requests_and_sessions(self, daemon, client):
        sid = client.launch(seed=1)["session_id"]
        client.step(sid, steps=2)
        stats = client.stats(metrics=True)
        counters = stats["metrics"]["counters"]
        requests = counters[metric_names.SERVE_REQUESTS]["samples"]
        launches = [
            s["value"] for s in requests
            if s["labels"] == {"method": "session.launch", "status": "ok"}
        ]
        assert launches == [1]
        hists = stats["metrics"]["histograms"]
        assert any(
            s["count"] > 0
            for s in hists[metric_names.SERVE_REQUEST_US]["samples"]
        )
        gauges = stats["metrics"]["gauges"]
        sessions = gauges[metric_names.SERVE_SESSIONS]["samples"]
        totals = [s for s in sessions if s["labels"].get("tenant") == "total"]
        assert totals and totals[0]["value"] == 1

    def test_request_spans_recorded_on_wall_clock(self, daemon, client):
        client.ping()
        spans = [s.name for s in daemon.obs.tracer.spans]
        assert "serve.request.ping" in spans
