"""The serve throughput benchmark produces a schema-valid artifact."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.schema import validate_bench

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location(
        "bench_serve_throughput",
        REPO_ROOT / "benchmarks" / "bench_serve_throughput.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def quick_doc(bench):
    return bench.run_bench(clients=2, requests=8, seed=101, quick=True)


class TestBenchServe:
    def test_artifact_is_schema_valid(self, quick_doc):
        assert validate_bench(quick_doc) == []
        assert quick_doc["bench"] == "serve"
        assert quick_doc["quick"] is True

    def test_carries_throughput_and_latency_figures(self, quick_doc):
        row = quick_doc["results"][0]
        assert row["clients"] == 2
        assert row["requests"] == 16  # every request got a latency sample
        assert row["requests_per_sec"] > 0
        assert 0 <= row["p50_ms"] <= row["p99_ms"]

    def test_carries_wall_seconds(self, quick_doc):
        assert quick_doc["wall_seconds"] > 0

    def test_json_serialisable(self, quick_doc):
        json.dumps(quick_doc)

    def test_main_writes_and_validates(self, bench, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        rc = bench.main([
            "--quick", "--clients", "2", "--requests", "6",
            "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_bench(doc) == []
        assert "req/s" in capsys.readouterr().out

    def test_percentile_nearest_rank(self, bench):
        values = [float(v) for v in range(101)]
        assert bench._percentile(values, 0.50) == 50.0
        assert bench._percentile(values, 0.99) == 99.0
        assert bench._percentile([], 0.99) == 0.0
        assert bench._percentile([7.0], 0.50) == 7.0
