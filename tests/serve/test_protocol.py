"""Wire-protocol unit tests: framing, envelopes, typed errors."""

from __future__ import annotations

import pytest

from repro.serve.protocol import (
    E_INVALID_PARAMS,
    E_INVALID_REQUEST,
    E_PARSE,
    ERROR_CODES,
    LineBuffer,
    MAX_LINE_BYTES,
    ServeError,
    decode_line,
    encode_error,
    encode_request,
    encode_response,
    parse_request,
)


class TestEnvelope:
    def test_request_roundtrip(self):
        line = encode_request(7, "session.step", {"steps": 4})
        assert line.endswith(b"\n")
        rid, method, params = parse_request(decode_line(line))
        assert (rid, method, params) == (7, "session.step", {"steps": 4})

    def test_response_roundtrip(self):
        obj = decode_line(encode_response(3, {"x": 1}))
        assert obj == {"id": 3, "ok": True, "result": {"x": 1}}

    def test_error_roundtrip_carries_code(self):
        err = ServeError(E_INVALID_PARAMS, "nope", data={"hint": 1})
        obj = decode_line(encode_error(None, err))
        assert obj["ok"] is False
        assert obj["id"] is None
        assert obj["error"]["code"] == E_INVALID_PARAMS
        assert obj["error"]["data"] == {"hint": 1}

    def test_malformed_json_is_parse_error(self):
        with pytest.raises(ServeError) as exc:
            decode_line(b"{not json")
        assert exc.value.code == E_PARSE

    def test_non_object_is_invalid_request(self):
        with pytest.raises(ServeError) as exc:
            decode_line(b"[1, 2, 3]")
        assert exc.value.code == E_INVALID_REQUEST

    @pytest.mark.parametrize(
        "obj",
        [
            {"id": "seven", "method": "ping"},
            {"id": 1, "method": ""},
            {"id": 1},
            {"id": 1, "method": 42},
        ],
    )
    def test_bad_envelopes_rejected(self, obj):
        with pytest.raises(ServeError) as exc:
            parse_request(obj)
        assert exc.value.code == E_INVALID_REQUEST

    def test_non_object_params_is_invalid_params(self):
        with pytest.raises(ServeError) as exc:
            parse_request({"id": 1, "method": "ping", "params": [1]})
        assert exc.value.code == E_INVALID_PARAMS

    def test_missing_id_is_allowed(self):
        rid, method, params = parse_request({"method": "ping"})
        assert rid is None and method == "ping" and params == {}

    def test_unknown_error_code_rejected_at_construction(self):
        with pytest.raises(ValueError):
            ServeError("made_up_code", "boom")
        assert "busy" in ERROR_CODES and "quota" in ERROR_CODES


class TestLineBuffer:
    def test_split_across_feeds(self):
        buf = LineBuffer()
        assert buf.feed(b'{"a":') == []
        assert buf.feed(b"1}\nrest") == [("line", b'{"a":1}')]
        assert buf.feed(b"\n") == [("line", b"rest")]

    def test_multiple_lines_in_one_feed(self):
        buf = LineBuffer()
        events = buf.feed(b"one\ntwo\nthree\n")
        assert events == [
            ("line", b"one"), ("line", b"two"), ("line", b"three"),
        ]

    def test_blank_lines_skipped(self):
        assert LineBuffer().feed(b"\n  \nx\n") == [("line", b"x")]

    def test_oversized_line_overflows_then_recovers(self):
        buf = LineBuffer(limit=8)
        events = buf.feed(b"0123456789abcdef\nok\n")
        assert events[0][0] == "overflow"
        assert events[0][1] == 17  # the line plus its newline
        assert events[1] == ("line", b"ok")

    def test_oversized_line_spanning_feeds(self):
        buf = LineBuffer(limit=8)
        assert buf.feed(b"X" * 20) == []  # enters discard mode
        events = buf.feed(b"Y" * 5 + b"\nok\n")
        assert events[0][0] == "overflow"
        assert events[0][1] == 26
        assert events[1] == ("line", b"ok")

    def test_default_limit_is_the_protocol_cap(self):
        assert LineBuffer().limit == MAX_LINE_BYTES
