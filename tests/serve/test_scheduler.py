"""Cooperative-scheduler unit tests: fairness, cancellation, crashes."""

from __future__ import annotations

import pytest

from repro.serve.protocol import E_SESSION_PARKED, ServeError
from repro.serve.scheduler import CooperativeScheduler, RunJob
from repro.serve.session import Session

SLICE = 10_000_000


def _job(session, cycles, done, cancelled=None):
    return RunJob(
        session,
        cycles,
        slice_cycles=SLICE,
        on_done=lambda result, err: done.append((session.tenant, result, err)),
        is_cancelled=cancelled or (lambda: False),
    )


class TestFairness:
    def test_small_job_finishes_before_huge_job(self):
        sched = CooperativeScheduler()
        hog = Session("s1", "hog", "baseline", 1)
        small = Session("s2", "small", "baseline", 2)
        done = []
        sched.submit(_job(hog, 40 * SLICE, done))  # submitted FIRST
        sched.submit(_job(small, SLICE, done))
        sched.drain()
        finish_order = [tenant for tenant, _, _ in done]
        assert finish_order == ["small", "hog"]

    def test_jobs_interleave_slice_by_slice(self):
        sched = CooperativeScheduler()
        a = Session("s1", "a", "baseline", 1)
        b = Session("s2", "b", "baseline", 2)
        done = []
        sched.submit(_job(a, 3 * SLICE, done))
        sched.submit(_job(b, 3 * SLICE, done))
        # After two ticks each session has advanced exactly one slice.
        assert sched.tick() and sched.tick()
        assert a.slices_run == 1 and b.slices_run == 1

    def test_result_reports_totals(self):
        sched = CooperativeScheduler()
        session = Session("s1", "a", "baseline", 1)
        done = []
        sched.submit(_job(session, 2 * SLICE + 1, done))
        sched.drain()
        (_, result, err) = done[0]
        assert err is None
        assert result["cycles_advanced"] >= 2 * SLICE + 1
        # A slice may overshoot (fuzz actions are indivisible), so the
        # job can need anywhere from 1 to 3 slices — just not zero.
        assert result["slices"] >= 1
        assert result["clock"] == session.clock


class TestCancellation:
    def test_cancelled_job_dropped_without_reply(self):
        sched = CooperativeScheduler()
        session = Session("s1", "a", "baseline", 1)
        done = []
        gone = []
        sched.submit(_job(session, 10 * SLICE, done, cancelled=lambda: bool(gone)))
        assert sched.tick()
        gone.append(True)  # client disconnects after the first slice
        sched.drain()
        assert done == []  # nobody to answer
        assert sched.cancelled == 1
        # The session itself is untouched and still consistent.
        assert session.state.value == "running"
        session.step(1)


class TestCrashMidSlice:
    def test_crash_finishes_job_with_typed_error_and_queue_drains(self):
        sched = CooperativeScheduler()
        victim = Session("s1", "victim", "baseline", 1)
        bystander = Session("s2", "bystander", "baseline", 2)
        victim.step(3)
        victim.park("pre-parked by test")  # next slice hits the gate
        done = []
        sched.submit(_job(victim, 5 * SLICE, done))
        sched.submit(_job(bystander, SLICE, done))
        sched.drain()
        by_tenant = {tenant: (result, err) for tenant, result, err in done}
        result, err = by_tenant["victim"]
        assert result is None and isinstance(err, ServeError)
        assert err.code == E_SESSION_PARKED
        result, err = by_tenant["bystander"]
        assert err is None and result["cycles_advanced"] >= SLICE

    def test_empty_queue_tick_is_a_noop(self):
        sched = CooperativeScheduler()
        assert sched.tick() is False
        assert sched.idle


class TestValidation:
    def test_nonpositive_budgets_rejected(self):
        session = Session("s1", "a", "baseline", 1)
        with pytest.raises(ValueError):
            RunJob(session, 0, slice_cycles=SLICE, on_done=lambda r, e: None)
        with pytest.raises(ValueError):
            RunJob(session, SLICE, slice_cycles=0, on_done=lambda r, e: None)
