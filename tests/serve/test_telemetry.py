"""The telemetry plane: streaming frames, rollups, exposition, top.

Everything here runs against a real daemon on a loopback socket (the
``daemon``/``client`` fixtures from conftest) except the pieces that
are pure functions — frame validation, the hub's queue accounting, the
``repro top`` renderer — which get direct unit tests.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.obs.schema import (
    TELEMETRY_FRAME_TYPES,
    TELEMETRY_ROLLUP_KEYS,
    TELEMETRY_SCHEMA_NAME,
    TELEMETRY_SCHEMA_VERSION,
    validate_telemetry_frame,
    validate_telemetry_snapshot,
)
from repro.serve.client import ServeClient
from repro.serve.daemon import Connection, ServeDaemon
from repro.serve.protocol import (
    E_INVALID_PARAMS,
    E_RESPONSE_TOO_LARGE,
    E_NO_SUCH_SESSION,
    MAX_LINE_BYTES,
    ServeError,
)
from repro.serve.telemetry import MAX_QUEUE_FRAMES, TelemetryHub
from repro.serve.top import render_top


def _drain(client: ServeClient, max_seconds: float = 3.0) -> list[dict]:
    return client.read_frames(count=1_000_000, max_seconds=max_seconds)


class TestSubscribe:
    def test_hello_is_the_first_frame(self, client):
        sub = client.subscribe()
        assert sub["protocol"] == TELEMETRY_SCHEMA_NAME
        assert sub["version"] == TELEMETRY_SCHEMA_VERSION
        (hello,) = client.read_frames(count=1)
        assert hello["type"] == "hello"
        assert hello["subscriber"] == sub["subscriber"]
        assert validate_telemetry_frame(hello) == []

    def test_live_session_traffic_arrives_schema_valid(
        self, client, make_client
    ):
        client.subscribe()
        driver = make_client("t-driver")
        sid = driver.launch(seed=3)["session_id"]
        driver.step(sid, steps=8)
        driver.kill(sid)
        frames = _drain(client)
        kinds = {f["type"] for f in frames}
        assert {"hello", "lifecycle", "span", "metric"} <= kinds
        for frame in frames:
            assert validate_telemetry_frame(frame) == [], frame
        events = [
            f["event"] for f in frames if f["type"] == "lifecycle"
        ]
        assert events.count("launch") == 1
        assert events.count("kill") == 1

    def test_seq_is_monotonic_per_subscriber(self, client, make_client):
        client.subscribe()
        driver = make_client("t-driver")
        sid = driver.launch(seed=3)["session_id"]
        driver.step(sid, steps=4)
        seqs = [f["seq"] for f in _drain(client)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_kind_filter(self, client, make_client):
        client.subscribe(kinds=["lifecycle"])
        driver = make_client("t-driver")
        sid = driver.launch(seed=3)["session_id"]
        driver.step(sid, steps=4)
        driver.kill(sid)
        frames = _drain(client)
        # hello bypasses filters; everything else must be lifecycle.
        assert frames[0]["type"] == "hello"
        assert {f["type"] for f in frames[1:]} == {"lifecycle"}

    def test_tenant_filter(self, client, make_client):
        client.subscribe(tenants=["t-a"], kinds=["lifecycle"])
        for tenant in ("t-a", "t-b"):
            driver = make_client(tenant)
            driver.kill(driver.launch(seed=1)["session_id"])
        frames = [f for f in _drain(client) if f["type"] == "lifecycle"]
        assert frames, "expected lifecycle frames from t-a"
        assert {f["tenant"] for f in frames} == {"t-a"}

    def test_unknown_kind_rejected(self, client):
        with pytest.raises(ServeError) as err:
            client.subscribe(kinds=["nonsense"])
        assert err.value.code == E_INVALID_PARAMS

    def test_max_queue_bounds_enforced(self, client):
        with pytest.raises(ServeError) as err:
            client.subscribe(max_queue=MAX_QUEUE_FRAMES + 1)
        assert err.value.code == E_INVALID_PARAMS
        with pytest.raises(ServeError):
            client.subscribe(max_queue=0)

    def test_unsubscribe_returns_stats_then_errors(self, client):
        client.subscribe()
        client.read_frames(count=1)
        stats = client.unsubscribe()
        assert stats["enqueued"] >= 1
        with pytest.raises(ServeError) as err:
            client.unsubscribe()
        assert err.value.code == E_INVALID_PARAMS

    def test_resubscribe_replaces_the_old_subscription(self, client, daemon):
        first = client.subscribe()
        second = client.subscribe(kinds=["lifecycle"])
        assert second["subscriber"] != first["subscriber"]
        # One subscription per connection: the stats list shows one.
        assert len(client.stats()["telemetry"]["subscribers"]) == 1


class TestZeroOverheadGate:
    def test_taps_detach_when_the_last_subscriber_leaves(
        self, client, make_client, daemon
    ):
        driver = make_client("t-driver")
        sid = driver.launch(seed=3)["session_id"]
        session = daemon.registry.sessions[sid]
        obs = session.env.machine.obs
        baseline_close = len(obs.tracer.on_close)
        baseline_hooks = len(obs.metrics.hooks)
        assert daemon.telemetry.tapped == 0
        client.subscribe()
        client.read_frames(count=1)
        # The subscribe round trip completed, so taps are attached
        # (daemon obs + the live session).
        assert daemon.telemetry.tapped >= 2
        assert len(obs.tracer.on_close) == baseline_close + 1
        assert len(obs.metrics.hooks) == baseline_hooks + 1
        client.unsubscribe()
        assert daemon.telemetry.tapped == 0
        # The session's own observer lists are back to their baseline
        # (flight recorder, fuzz coverage) — nothing of ours lingers.
        assert len(obs.tracer.on_close) == baseline_close
        assert len(obs.metrics.hooks) == baseline_hooks

    def test_sessions_launched_mid_subscription_get_tapped(
        self, client, make_client, daemon
    ):
        client.subscribe(kinds=["span"])
        client.read_frames(count=1)
        driver = make_client("t-driver")
        sid = driver.launch(seed=3)["session_id"]
        driver.step(sid, steps=4)
        frames = _drain(client)
        assert any(f["session_id"] == sid for f in frames)


class TestSlowSubscriber:
    def test_slow_client_drops_are_counted_not_stalling(
        self, client, make_client
    ):
        client.subscribe(max_queue=1)
        driver = make_client("t-driver")
        sid = driver.launch(seed=3)["session_id"]
        # One step request publishes a burst of span/metric frames
        # before the loop flushes, so a queue of 1 must drop.
        driver.step(sid, steps=16)
        frames = _drain(client)
        drops = [f for f in frames if f["type"] == "drops"]
        assert drops, "expected a drops frame from the size-1 queue"
        for frame in drops:
            assert validate_telemetry_frame(frame) == []
            assert frame["dropped"] >= 1
        assert drops[-1]["total_dropped"] >= drops[-1]["dropped"]
        # The driver was never stalled: its requests all completed.
        assert driver.inspect(sid)["steps_applied"] == 16

    def test_drop_accounting_reaches_daemon_metrics(
        self, client, make_client, daemon
    ):
        client.subscribe(max_queue=1)
        driver = make_client("t-driver")
        sid = driver.launch(seed=3)["session_id"]
        driver.step(sid, steps=16)
        _drain(client)
        stats = client.stats()["telemetry"]
        assert stats["total_dropped"] >= 1


class TestTraceStream:
    def test_stream_is_scoped_to_the_session(self, client, make_client):
        driver = make_client("t-main")
        sid_a = driver.launch(seed=1)["session_id"]
        sid_b = driver.launch(seed=2)["session_id"]
        sub = client.trace_stream(sid_a)
        assert sub["session_id"] == sid_a
        driver.step(sid_a, steps=4)
        driver.step(sid_b, steps=4)
        frames = _drain(client)
        ids = {f.get("session_id") for f in frames if f["type"] != "hello"}
        assert ids <= {sid_a}

    def test_stream_rejects_other_tenants_sessions(
        self, client, make_client
    ):
        other = make_client("t-other")
        sid = other.launch(seed=1)["session_id"]
        with pytest.raises(ServeError) as err:
            client.trace_stream(sid)
        assert err.value.code == E_NO_SUCH_SESSION


class TestSnapshot:
    def test_snapshot_is_schema_valid_and_rolls_up_tenants(
        self, client, make_client
    ):
        alice = make_client("t-alice")
        bob = make_client("t-bob")
        for drv, seed in ((alice, 1), (alice, 2), (bob, 3)):
            sid = drv.launch(seed=seed)["session_id"]
            drv.step(sid, steps=4)
        snap = client.snapshot()
        assert validate_telemetry_snapshot(snap) == []
        assert snap["tenants"]["t-alice"]["sessions"] == 2
        assert snap["tenants"]["t-bob"]["sessions"] == 1
        assert snap["tenants"]["t-alice"]["steps_applied"] == 8
        glob = snap["global"]
        assert glob["sessions"] == 3
        for key in TELEMETRY_ROLLUP_KEYS:
            assert glob[key] == sum(
                t[key] for t in snap["tenants"].values()
            )

    def test_snapshot_counts_parked_sessions(self, client, make_client):
        driver = make_client("t-driver")
        sid = driver.launch(seed=1)["session_id"]
        with pytest.raises(ServeError):
            driver.inject(sid, "crash", {"reason": "boom"})
        snap = client.snapshot()
        assert snap["tenants"]["t-driver"]["parked"] == 1
        assert snap["tenants"]["t-driver"]["postmortems"] == 1

    def test_daemon_section_tracks_the_request_plane(self, client):
        client.ping()
        snap = client.snapshot()
        daemon_doc = snap["daemon"]
        assert daemon_doc["requests_total"] >= 2  # hello + ping at least
        assert daemon_doc["connections"] >= 1
        assert daemon_doc["requests_per_sec"] > 0


class TestProm:
    def test_prom_exposition_carries_serve_and_tenant_series(
        self, client, make_client
    ):
        driver = make_client("t-alice")
        sid = driver.launch(seed=1)["session_id"]
        driver.step(sid, steps=4)
        text = client.prom()
        assert "# TYPE serve_requests_total counter" in text
        assert "# TYPE serve_request_us histogram" in text
        assert 'covirt_tenant_sessions{tenant="t-alice"} 1' in text
        assert "covirt_uptime_seconds" in text
        # Exposition is line-oriented text; every sample line is
        # name{labels} value.
        for line in text.splitlines():
            assert line.startswith("#") or " " in line


class TestResponseTooLarge:
    def test_oversized_reply_becomes_a_typed_error(self):
        daemon = ServeDaemon(tcp=("127.0.0.1", 0))
        ours, theirs = socket.socketpair()
        try:
            conn = Connection(ours, "test")
            daemon._reply_ok(
                conn, 7, "session.trace", None,
                {"blob": "x" * (MAX_LINE_BYTES + 1)},
            )
            theirs.settimeout(5.0)
            line = theirs.makefile("rb").readline()
            doc = json.loads(line)
            assert doc["id"] == 7
            assert doc["ok"] is False
            assert doc["error"]["code"] == E_RESPONSE_TOO_LARGE
            assert doc["error"]["data"]["cap"] == MAX_LINE_BYTES
            assert "since_cycle" in doc["error"]["message"]
            assert len(line) <= MAX_LINE_BYTES
        finally:
            ours.close()
            theirs.close()
            daemon._shutdown_sockets()


class TestTraceWindow:
    """session.trace limit/since_cycle semantics through the daemon."""

    def test_limit_windows_and_cursor_resumes(self, client):
        sid = client.launch(seed=3)["session_id"]
        client.step(sid, steps=8)
        first = client.trace(sid, cursor=0, limit=5)
        assert len(first["events"]) == 5
        rest = client.trace(sid, cursor=first["cursor"], limit=64)
        assert first["cursor"] == 5
        assert rest["cursor"] == rest["recorded"]
        total = client.trace(sid, cursor=0, limit=64)
        assert len(first["events"]) + len(rest["events"]) >= len(
            total["events"]
        )

    def test_since_cycle_filters_but_consumes(self, client):
        sid = client.launch(seed=3)["session_id"]
        client.step(sid, steps=8)
        everything = client.trace(sid, cursor=0, limit=64)
        cutoff = max(
            event.get("tsc", event.get("end", event.get("start", 0)))
            for event in everything["events"]
        )
        doc = client.request(
            "session.trace",
            {
                "session_id": sid,
                "cursor": 0,
                "limit": 64,
                "since_cycle": int(cutoff) + 1,
            },
        )
        # Every event is older than the cutoff: filtered out, but the
        # cursor still advanced past them (consumed, not deferred).
        assert doc["events"] == []
        assert doc["cursor"] == doc["recorded"]

    def test_bad_since_cycle_rejected(self, client):
        sid = client.launch(seed=3)["session_id"]
        with pytest.raises(ServeError) as err:
            client.request(
                "session.trace",
                {"session_id": sid, "since_cycle": "soon"},
            )
        assert err.value.code == E_INVALID_PARAMS


class TestHubUnit:
    """Direct hub tests (no daemon): queue bounds and filters."""

    def test_bounded_queue_drops_and_counts(self):
        hub = TelemetryHub()
        sub = hub.subscribe(None, max_queue=2)
        for i in range(5):
            hub.publish({"type": "lifecycle", "event": "launch",
                         "tenant": "t", "session_id": None})
        # hello took one slot; one lifecycle fit; three dropped.
        assert len(sub.queue) == 2
        assert sub.dropped == 4
        assert sub.pending_drops == 4

    def test_publish_without_subscribers_is_free(self):
        hub = TelemetryHub()
        hub.publish({"type": "lifecycle", "event": "launch", "tenant": "t"})
        assert hub._seq == 0  # no frame was even stamped

    def test_frame_types_constant_matches_validator(self):
        for kind in TELEMETRY_FRAME_TYPES:
            assert isinstance(kind, str)
        assert set(TELEMETRY_FRAME_TYPES) == {
            "hello", "span", "metric", "lifecycle", "drops",
        }


class TestTopRenderer:
    def _snapshot(self):
        return {
            "endpoint": "tcp:127.0.0.1:7717",
            "uptime_seconds": 12.34,
            "daemon": {
                "connections": 2,
                "requests_total": 100,
                "requests_per_sec": 8.1,
                "request_p50_us": 250.0,
                "request_p99_us": 5000.0,
                "shed": {"busy": 1, "quota": 2},
                "backlog": 0,
                "completed_jobs": 3,
                "subscribers": [{"subscriber": 0, "dropped": 7}],
            },
            "global": {key: 5 for key in sorted(TELEMETRY_ROLLUP_KEYS)},
            "tenants": {
                "alice": {key: 5 for key in sorted(TELEMETRY_ROLLUP_KEYS)},
            },
        }

    def test_render_top_is_pure_text(self):
        text = render_top(self._snapshot())
        assert "covirt-serve telemetry" in text
        assert "requests 100 (8.1 rps)" in text
        assert "shed busy=1 quota=2" in text
        assert "subscribers 1 (dropped 7)" in text
        assert "alice" in text and "(global)" in text
        header = [l for l in text.splitlines() if l.startswith("TENANT")][0]
        for column in ("SESS", "STEPS", "EXITS", "PM"):
            assert column in header

    def test_render_top_tolerates_empty_snapshot(self):
        text = render_top({})
        assert "covirt-serve telemetry" in text


class TestTopCli:
    def test_probe_mode_validates_frames(self, daemon, capsys):
        from repro.cli import main as cli_main

        rc = cli_main([
            "top", "--connect", daemon.endpoint,
            "--probe", "1.0", "--min-frames", "5",
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "top --probe: ok" in out

    def test_once_mode_renders_a_dashboard(self, daemon, capsys):
        from repro.cli import main as cli_main

        rc = cli_main([
            "top", "--connect", daemon.endpoint, "--once", "--plain",
        ])
        assert rc == 0
        assert "covirt-serve telemetry" in capsys.readouterr().out

    def test_json_mode_emits_the_snapshot(self, daemon, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["top", "--connect", daemon.endpoint, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_telemetry_snapshot(doc) == []

    def test_connect_failure_is_exit_2(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main([
            "top", "--connect", "tcp:127.0.0.1:1", "--once",
        ])
        assert rc == 2


class TestMetricsDumpProm:
    def test_cli_prom_flag(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["metrics-dump", "--prom"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE covirt_exits_total counter" in out


class TestFrameValidator:
    def _span_frame(self):
        return {
            "seq": 4, "type": "span", "tenant": "t", "session_id": "s-1",
            "name": "n", "category": "", "track": "core0",
            "start": 10, "end": 20, "args": {},
        }

    def test_valid_span_frame(self):
        assert validate_telemetry_frame(self._span_frame()) == []

    def test_unknown_type_rejected(self):
        problems = validate_telemetry_frame({"seq": 0, "type": "nope"})
        assert any("type" in p for p in problems)

    def test_negative_seq_rejected(self):
        frame = dict(self._span_frame(), seq=-1)
        assert validate_telemetry_frame(frame) != []

    def test_span_end_before_start_rejected(self):
        frame = dict(self._span_frame(), end=5)
        assert any("end" in p for p in validate_telemetry_frame(frame))

    def test_missing_required_field_rejected(self):
        frame = self._span_frame()
        del frame["tenant"]
        assert any("tenant" in p for p in validate_telemetry_frame(frame))

    def test_lifecycle_event_membership(self):
        frame = {
            "seq": 0, "type": "lifecycle", "event": "exploded",
            "tenant": "t", "session_id": None,
        }
        assert any("event" in p for p in validate_telemetry_frame(frame))

    def test_drops_counts_must_be_consistent(self):
        frame = {
            "seq": 0, "type": "drops", "dropped": 5, "total_dropped": 3,
        }
        assert validate_telemetry_frame(frame) != []

    def test_non_object_rejected(self):
        assert validate_telemetry_frame([1, 2]) != []
