"""Session unit tests: determinism, slicing, parking, post-mortems."""

from __future__ import annotations

import pytest

from repro.obs.schema import validate_postmortem
from repro.serve.protocol import E_INVALID_PARAMS, E_SESSION_PARKED, ServeError
from repro.serve.session import (
    MAX_STEPS_PER_SLICE,
    PARK_TRIGGER,
    SCENARIOS,
    Session,
    SessionState,
)


class TestDeterminism:
    def test_same_seed_same_outcomes(self):
        a = Session("s1", "alice", "baseline", 42)
        b = Session("s2", "bob", "baseline", 42)
        assert a.step(25) == b.step(25)
        assert a.clock == b.clock

    def test_different_seeds_diverge(self):
        a = Session("s1", "alice", "baseline", 1)
        b = Session("s2", "alice", "baseline", 2)
        # 30 steps of a seeded schedule virtually never coincide fully.
        assert a.step(30) != b.step(30)

    def test_scenarios_cover_every_schedule(self):
        assert set(SCENARIOS) == {"baseline", "hostile", "churn", "recovery"}
        with pytest.raises(ServeError) as exc:
            Session("s1", "alice", "nope", 1)
        assert exc.value.code == E_INVALID_PARAMS


class TestAdvance:
    def test_advance_honours_cycle_contract(self):
        session = Session("s1", "alice", "baseline", 7)
        out = session.advance(10_000_000)
        assert out["cycles"] >= 10_000_000
        assert out["steps"] <= MAX_STEPS_PER_SLICE
        assert out["clock"] == session.clock

    def test_advance_accumulates_slices(self):
        session = Session("s1", "alice", "baseline", 7)
        session.advance(5_000_000)
        session.advance(5_000_000)
        assert session.slices_run == 2


class TestParking:
    def _park(self, session: Session) -> ServeError:
        with pytest.raises(ServeError) as exc:
            session.inject("crash", {"reason": "test crash"})
        return exc.value

    def test_injected_crash_parks_with_typed_error(self):
        session = Session("s1", "alice", "baseline", 7)
        session.step(5)
        err = self._park(session)
        assert err.code == E_SESSION_PARKED
        assert session.state is SessionState.PARKED
        assert "test crash" in session.park_reason

    def test_park_freezes_a_valid_postmortem(self):
        session = Session("s1", "alice", "baseline", 7)
        session.step(5)
        before = len(session.env.machine.obs.flight.postmortems)
        self._park(session)
        bundles = session.env.machine.obs.flight.postmortems
        assert len(bundles) == before + 1
        bundle = bundles[-1]
        assert validate_postmortem(bundle) == []
        assert bundle["trigger"] == PARK_TRIGGER
        assert bundle["detail"]["session"] == "s1"
        assert bundle["detail"]["tenant"] == "alice"
        assert bundle["detail"]["seed"] == 7

    def test_parked_rejects_mutation_but_stays_inspectable(self):
        session = Session("s1", "alice", "baseline", 7)
        session.step(5)
        self._park(session)
        for mutate in (
            lambda: session.step(1),
            lambda: session.advance(1_000_000),
            lambda: session.inject("tick", {"cycles": 1_000_000}),
        ):
            with pytest.raises(ServeError) as exc:
                mutate()
            assert exc.value.code == E_SESSION_PARKED
        doc = session.inspect()
        assert doc["state"] == "parked"
        assert doc["park_reason"]
        trace = session.trace(cursor=0, limit=10)
        assert trace["events"]

    def test_park_is_idempotent(self):
        session = Session("s1", "alice", "baseline", 7)
        session.step(5)
        self._park(session)
        count = len(session.env.machine.obs.flight.postmortems)
        session.park("again")  # no-op: already parked
        assert len(session.env.machine.obs.flight.postmortems) == count

    def test_on_park_hook_fires_once(self):
        session = Session("s1", "alice", "baseline", 7)
        parked = []
        session.on_park = parked.append
        session.step(5)
        self._park(session)
        assert parked == [session]


class TestInject:
    def test_inject_preserves_scheduled_action_kinds(self):
        a = Session("s1", "alice", "baseline", 42)
        b = Session("s2", "bob", "baseline", 42)
        a.step(10)
        b.step(10)
        b.inject("tick", {"cycles": 1_000_000})
        # The injected TICK moves b's clock, so clocks diverge — but the
        # seeded action stream (kinds, order) must not.
        kinds_a = [r["kind"] for r in a.step(10)]
        kinds_b = [r["kind"] for r in b.step(10)]
        assert kinds_a == kinds_b

    def test_unknown_kind_is_invalid_params(self):
        session = Session("s1", "alice", "baseline", 7)
        with pytest.raises(ServeError) as exc:
            session.inject("frobnicate", {})
        assert exc.value.code == E_INVALID_PARAMS
        assert session.state is SessionState.RUNNING


class TestKill:
    def test_kill_tears_down_enclaves(self):
        session = Session("s1", "alice", "baseline", 7)
        session.step(20)
        result = session.kill()
        assert session.state is SessionState.KILLED
        assert result["session_id"] == "s1"
        assert all(slot is None for slot in session.engine.slots)
