"""The acceptance claim, end to end over the wire: a session crashed
via ``session.inject`` is parked and freezes a post-mortem bundle,
while every concurrent session keeps serving with results identical to
a solo same-seed run."""

from __future__ import annotations

import pytest

from repro.obs.schema import validate_postmortem
from repro.serve.protocol import E_SESSION_PARKED, ServeError
from repro.serve.session import PARK_TRIGGER, Session

REFERENCE_SEED = 424242
PHASE_ONE = 12
PHASE_TWO = 18


def _solo_reference() -> tuple[list, list]:
    """What a session with REFERENCE_SEED produces with nothing else on
    the machine: the ground truth the daemon run must reproduce."""
    solo = Session("solo", "ref", "baseline", REFERENCE_SEED)
    first = solo.step(PHASE_ONE)
    second = solo.step(PHASE_TWO)
    return first, second


class TestCrashContainment:
    def test_parked_session_freezes_postmortem_others_unaffected(
        self, daemon, make_client
    ):
        solo_first, solo_second = _solo_reference()

        alice = make_client("alice")
        mallory = make_client("mallory")
        carol = make_client("carol")

        sid_a = alice.launch(scenario="baseline",
                             seed=REFERENCE_SEED)["session_id"]
        sid_m = mallory.launch(scenario="hostile", seed=777)["session_id"]

        # Phase one: both tenants make progress concurrently.
        assert alice.step(sid_a, steps=PHASE_ONE)["steps"] == solo_first
        mallory.step(sid_m, steps=10)

        # Mallory's session crashes via session.inject.
        with pytest.raises(ServeError) as exc:
            mallory.inject(sid_m, "crash", {"reason": "chaos probe"})
        assert exc.value.code == E_SESSION_PARKED

        # The crashed session is parked with a frozen, valid post-mortem.
        doc = mallory.inspect(sid_m)
        assert doc["state"] == "parked"
        assert "chaos probe" in doc["park_reason"]
        assert doc["postmortems"] >= 1
        session = daemon.registry.get("mallory", sid_m)
        bundle = session.env.machine.obs.flight.postmortems[-1]
        assert validate_postmortem(bundle) == []
        assert bundle["trigger"] == PARK_TRIGGER
        assert bundle["detail"]["session"] == sid_m

        # Parked means parked: mutation is refused...
        with pytest.raises(ServeError) as exc:
            mallory.step(sid_m, steps=1)
        assert exc.value.code == E_SESSION_PARKED
        # ...but the wreck stays inspectable for debugging.
        assert mallory.trace(sid_m, cursor=0, limit=5)["events"]

        # Phase two: Alice's results are byte-identical to the solo
        # run — the crash next door changed nothing for her.
        assert alice.step(sid_a, steps=PHASE_TWO)["steps"] == solo_second

        # A session launched *after* the crash serves normally too.
        sid_c = carol.launch(scenario="baseline",
                             seed=REFERENCE_SEED)["session_id"]
        assert carol.step(sid_c, steps=PHASE_ONE)["steps"] == solo_first

        # Daemon bookkeeping saw exactly one park.
        stats = alice.stats()
        assert stats["registry"]["parked"] == 1
        assert stats["registry"]["sessions"] == 3

    def test_parked_session_can_still_be_killed(self, make_client):
        mallory = make_client("mallory")
        sid = mallory.launch(seed=9)["session_id"]
        mallory.step(sid, steps=5)
        with pytest.raises(ServeError):
            mallory.inject(sid, "crash", {})
        killed = mallory.kill(sid)
        assert killed["session_id"] == sid
        assert mallory.stats()["registry"]["sessions"] == 0

    def test_engine_failure_parks_too(self, daemon, make_client):
        # An invariant-oracle failure (not just a raised exception) must
        # park the session: force one by injecting a fake failure record
        # through the engine, then stepping.
        client = make_client("oracle-t")
        sid = client.launch(seed=13)["session_id"]
        client.step(sid, steps=3)
        session = daemon.registry.get("oracle-t", sid)
        session.engine.failure = {
            "kind": "oracle", "step": 3, "detail": "synthetic violation",
        }
        with pytest.raises(ServeError) as exc:
            client.step(sid, steps=1)
        assert exc.value.code == E_SESSION_PARKED
        assert client.inspect(sid)["state"] == "parked"
