"""Fixtures for the serving-layer suite: a live daemon on a loopback
TCP port (ephemeral, so parallel test runs never collide) plus
connected clients."""

from __future__ import annotations

import pytest

from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon
from repro.serve.registry import TenantQuota


@pytest.fixture
def quota() -> TenantQuota:
    """A deliberately small quota so limit tests are cheap to trip."""
    return TenantQuota(
        max_sessions=2,
        max_steps_per_request=64,
        max_cycles_per_request=1_000_000_000,
        max_cycles_per_slice=20_000_000,
        max_pending_jobs=2,
        max_trace_events=64,
    )


@pytest.fixture
def daemon(quota: TenantQuota):
    d = ServeDaemon(tcp=("127.0.0.1", 0), quota=quota, max_total_sessions=5)
    d.start()
    yield d
    d.stop()


@pytest.fixture
def client(daemon: ServeDaemon):
    with ServeClient(daemon.endpoint, tenant="t-main", timeout=30.0) as c:
        yield c


@pytest.fixture
def make_client(daemon: ServeDaemon):
    made: list[ServeClient] = []

    def factory(tenant: str | None = None) -> ServeClient:
        c = ServeClient(daemon.endpoint, tenant=tenant, timeout=30.0)
        made.append(c)
        return c

    yield factory
    for c in made:
        c.close()
