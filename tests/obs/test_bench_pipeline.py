"""Tests for the BENCH_*.json pipeline (benchmarks/runner.py + schema)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import metric_names
from repro.obs.schema import (
    BENCH_SCHEMA_NAME,
    BENCH_SCHEMA_VERSION,
    validate_bench,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_runner():
    spec = importlib.util.spec_from_file_location(
        "bench_runner", REPO_ROOT / "benchmarks" / "runner.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def runner():
    return _load_runner()


@pytest.fixture(scope="module")
def recovery_doc(runner):
    return runner.run_scenario("recovery", quick=True)


class TestRunner:
    def test_quick_scenario_is_schema_valid(self, recovery_doc):
        assert validate_bench(recovery_doc) == []
        assert recovery_doc["schema"] == BENCH_SCHEMA_NAME
        assert recovery_doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert recovery_doc["quick"] is True

    def test_exit_counts_cover_the_protection_surface(self, recovery_doc):
        exits = recovery_doc["exits_by_reason"]
        assert exits  # never empty
        for reason in ("ept_violation", "msr_write", "io_instruction"):
            assert exits.get(reason, 0) > 0

    def test_latency_histograms_populated(self, recovery_doc):
        hists = recovery_doc["metrics"]["histograms"]
        for name in (metric_names.EXIT_CYCLES, metric_names.MTTR_CYCLES):
            assert any(s["count"] > 0 for s in hists[name]["samples"])

    def test_doc_is_json_serialisable_and_deterministic(self, runner, recovery_doc):
        again = runner.run_scenario("recovery", quick=True)
        assert json.dumps(recovery_doc, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_every_scenario_registered(self, runner):
        assert set(runner.SCENARIOS) == {
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "recovery",
            "fuzz", "sweep", "telemetry",
        }

    def test_fuzz_scenario_rows_cover_both_modes(self, runner):
        doc = runner.run_scenario("fuzz", quick=True)
        assert validate_bench(doc) == []
        by_mode = {row["mode"]: row for row in doc["results"]}
        assert set(by_mode) == {"guided", "random"}
        assert by_mode["guided"]["edges"] > 0
        assert (
            by_mode["guided"]["distilled_entries"]
            <= by_mode["guided"]["corpus_entries"]
        )

    def test_workload_scenario_rows_carry_config_and_fom(self, runner):
        doc = runner.run_scenario("fig5", quick=True)
        assert validate_bench(doc) == []
        rows = doc["results"]
        assert {row["workload"] for row in rows} == {"STREAM", "RandomAccess_OMP"}
        for row in rows:
            assert set(row) >= {"config", "fom", "elapsed_cycles"}

    def test_main_writes_and_validates(self, runner, tmp_path, capsys):
        rc = runner.main(
            ["--quick", "--only", "recovery", "--out-dir", str(tmp_path)]
        )
        assert rc == 0
        path = tmp_path / "BENCH_recovery.json"
        assert validate_bench(json.loads(path.read_text())) == []


class TestCommittedArtifacts:
    def test_repo_root_carries_schema_valid_artifacts(self):
        paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
        assert len(paths) >= 5, "expected the committed BENCH_*.json set"
        for path in paths:
            doc = json.loads(path.read_text())
            assert validate_bench(doc) == [], f"{path.name} invalid"
            assert doc["bench"] in path.name


class TestBenchValidator:
    def _valid_doc(self, runner):
        return runner.run_scenario("recovery", quick=True)

    def test_missing_key_reported(self, recovery_doc):
        doc = dict(recovery_doc)
        del doc["exits_by_reason"]
        assert any("exits_by_reason" in p for p in validate_bench(doc))

    def test_wrong_schema_name_and_version(self, recovery_doc):
        doc = dict(recovery_doc, schema="other", schema_version=99)
        problems = validate_bench(doc)
        assert any("schema must be" in p for p in problems)
        assert any("schema_version" in p for p in problems)

    def test_empty_exits_rejected(self, recovery_doc):
        doc = dict(recovery_doc, exits_by_reason={})
        assert any("must not be empty" in p for p in validate_bench(doc))

    def test_unpopulated_histograms_rejected(self, recovery_doc):
        doc = dict(
            recovery_doc,
            metrics={"counters": {}, "gauges": {}, "histograms": {}},
        )
        assert any("populated" in p for p in validate_bench(doc))

    def test_bucket_count_mismatch_rejected(self, recovery_doc):
        doc = json.loads(json.dumps(recovery_doc))
        hist = doc["metrics"]["histograms"][metric_names.EXIT_CYCLES]
        hist["samples"][0]["counts"] = [1, 2, 3]
        assert any("len(bounds)+1" in p for p in validate_bench(doc))

    def test_non_object_document(self):
        assert validate_bench([1, 2]) != []

    def test_unknown_schema_version_message_names_the_supported_one(
        self, recovery_doc
    ):
        doc = dict(recovery_doc, schema_version=BENCH_SCHEMA_VERSION + 1)
        problems = validate_bench(doc)
        assert any(
            "unknown schema_version" in p and "understands" in p
            for p in problems
        )

    def test_unknown_bench_name_rejected(self, recovery_doc):
        doc = dict(recovery_doc, bench="fig99")
        assert any("unknown bench" in p for p in validate_bench(doc))

    def test_missing_figure_keys_rejected(self, runner):
        doc = runner.run_scenario("fig5", quick=True)
        broken = json.loads(json.dumps(doc))
        del broken["results"][0]["fom"]
        problems = validate_bench(broken)
        assert any("missing figure keys" in p and "fom" in p for p in problems)


class TestBenchValidateCli:
    def test_exit_1_and_clear_message_on_unknown_schema_version(
        self, recovery_doc, tmp_path, capsys
    ):
        from repro.cli import main as cli_main

        doc = dict(recovery_doc, schema_version=99)
        path = tmp_path / "BENCH_recovery.json"
        path.write_text(json.dumps(doc))
        assert cli_main(["bench-validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "unknown schema_version 99" in out

    def test_exit_1_on_missing_figure_keys(self, runner, tmp_path, capsys):
        from repro.cli import main as cli_main

        doc = runner.run_scenario("fig4", quick=True)
        del doc["results"][0]["attach_us"]
        path = tmp_path / "BENCH_fig4.json"
        path.write_text(json.dumps(doc))
        assert cli_main(["bench-validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "missing figure keys" in out

    def test_exit_0_on_the_committed_artifacts(self, capsys):
        from repro.cli import main as cli_main

        paths = [str(p) for p in sorted(REPO_ROOT.glob("BENCH_*.json"))]
        assert cli_main(["bench-validate", *paths]) == 0
        assert "ok" in capsys.readouterr().out
