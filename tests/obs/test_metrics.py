"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import json

import pytest

from repro.obs import metric_names
from repro.obs.metrics import (
    Counter,
    DEFAULT_CYCLE_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    prom_name,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_get_by_labels(self, registry):
        c = registry.counter("covirt.exits")
        c.inc(reason="ept_violation", core=0)
        c.inc(2, reason="ept_violation", core=0)
        c.inc(reason="cpuid", core=1)
        assert c.get(reason="ept_violation", core=0) == 3
        assert c.get(reason="cpuid", core=1) == 1
        assert c.get(reason="missing") == 0
        assert c.total() == 4

    def test_label_order_is_irrelevant(self, registry):
        c = registry.counter("c")
        c.inc(a=1, b=2)
        assert c.get(b=2, a=1) == 1

    def test_sum_by_collapses_one_dimension(self, registry):
        c = registry.counter("c")
        c.inc(3, reason="x", core=0)
        c.inc(4, reason="x", core=1)
        c.inc(5, reason="y", core=0)
        assert c.sum_by("reason") == {"x": 7, "y": 5}

    def test_counters_never_decrease(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)


class TestGauge:
    def test_set_overwrites(self, registry):
        g = registry.gauge("g")
        g.set(10, zone=0)
        g.set(20, zone=0)
        assert g.get(zone=0) == 20


class TestHistogram:
    def test_bucket_placement(self, registry):
        h = registry.histogram("h", buckets=(10, 100, 1000))
        h.observe(5)      # <= 10
        h.observe(10)     # bisect_left: still the first bucket
        h.observe(500)
        h.observe(10**6)  # +Inf overflow bucket
        (_labels, stats), = h.samples()
        assert stats["counts"] == [2, 0, 1, 1]
        assert stats["count"] == 4
        assert stats["sum"] == 5 + 10 + 500 + 10**6

    def test_counts_has_bounds_plus_one_entries(self, registry):
        h = registry.histogram("h")
        h.observe(1)
        (_labels, stats), = h.samples()
        assert len(stats["counts"]) == len(DEFAULT_CYCLE_BUCKETS) + 1

    def test_mean_and_per_label_counts(self, registry):
        h = registry.histogram("h", buckets=(100,))
        h.observe(10, kind="a")
        h.observe(30, kind="a")
        h.observe(1000, kind="b")
        assert h.count(kind="a") == 2
        assert h.mean(kind="a") == 20
        assert h.total_count() == 3
        assert h.mean(kind="missing") == 0.0

    def test_empty_buckets_fall_back_to_defaults(self):
        h = Histogram("h", buckets=())
        assert h.bounds == tuple(sorted(DEFAULT_CYCLE_BUCKETS))


class TestRegistry:
    def test_get_or_create_returns_same_instance(self, registry):
        assert registry.counter("c") is registry.counter("c")
        assert "c" in registry and len(registry) == 1

    def test_kind_mismatch_raises(self, registry):
        registry.counter("name")
        with pytest.raises(TypeError):
            registry.gauge("name")
        with pytest.raises(TypeError):
            registry.histogram("name")

    def test_get_unknown_returns_none(self, registry):
        assert registry.get("nope") is None

    def test_exit_counts_by_reason(self, registry):
        c = registry.counter(metric_names.EXITS)
        c.inc(reason="ept_violation", core=0)
        c.inc(reason="ept_violation", core=1)
        c.inc(reason="cpuid", core=0)
        assert registry.exit_counts_by_reason() == {
            "cpuid": 1,
            "ept_violation": 2,
        }

    def test_exit_counts_empty_without_metric(self, registry):
        assert registry.exit_counts_by_reason() == {}


class TestRendering:
    def _populate(self, registry: MetricsRegistry) -> None:
        registry.counter("b.counter", "help text").inc(5, reason="x")
        registry.gauge("a.gauge").set(3)
        registry.histogram("c.hist", buckets=(10, 100)).observe(50, kind="k")

    def test_to_dict_is_json_ready_and_sectioned(self, registry):
        self._populate(registry)
        doc = registry.to_dict()
        json.dumps(doc)  # must not raise
        assert set(doc) == {"counters", "gauges", "histograms"}
        assert doc["counters"]["b.counter"]["samples"] == [
            {"labels": {"reason": "x"}, "value": 5}
        ]
        hist = doc["histograms"]["c.hist"]
        assert hist["bounds"] == [10, 100]
        assert hist["samples"][0]["counts"] == [0, 1, 0]

    def test_to_dict_deterministic_across_insertion_orders(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("one").inc(x=1)
        a.counter("two").inc(y=2)
        b.counter("two").inc(y=2)
        b.counter("one").inc(x=1)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_render_text_mentions_every_metric(self, registry):
        self._populate(registry)
        text = registry.render_text()
        for name in ("a.gauge", "b.counter", "c.hist"):
            assert name in text
        assert "count=1" in text  # histogram line

    def test_render_text_empty_registry(self, registry):
        assert "no metrics" in registry.render_text()


class TestQuantile:
    def test_quantile_reads_bucket_upper_bounds(self, registry):
        h = registry.histogram("h", buckets=(10, 100, 1000))
        for value in (1, 2, 3, 50, 500, 5000):
            h.observe(value)
        assert h.quantile(0.5) == 10      # 3 of 6 land in the first bucket
        assert h.quantile(0.66) == 100
        assert h.quantile(0.84) == 1000
        assert h.quantile(1.0) == 1000    # overflow clamps to the last bound

    def test_quantile_per_label_vs_aggregate(self, registry):
        h = registry.histogram("h", buckets=(10, 100))
        h.observe(5, kind="fast")
        h.observe(50, kind="slow")
        h.observe(50, kind="slow")
        assert h.quantile(1.0, kind="fast") == 10
        assert h.quantile(1.0, kind="slow") == 100
        assert h.quantile(0.33) == 10  # aggregated across both label sets

    def test_quantile_empty_histogram_is_zero(self, registry):
        h = registry.histogram("h", buckets=(10,))
        assert h.quantile(0.99) == 0.0

    def test_quantile_rejects_out_of_range_q(self, registry):
        h = registry.histogram("h", buckets=(10,))
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestDispatchFastPath:
    def test_no_hooks_skips_fan_out_but_counts(self, registry):
        counter = registry.counter("c")
        counter.inc(kind="x")
        assert registry.hooks == []
        assert counter.get(kind="x") == 1

    def test_hooks_see_every_update_kind(self, registry):
        events = []
        registry.hooks.append(
            lambda kind, name, labels, value: events.append(
                (kind, name, dict(labels), value)
            )
        )
        registry.counter("c").inc(2, kind="x")
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(10,)).observe(3)
        assert ("counter", "c", {"kind": "x"}, 2) in events
        assert ("gauge", "g", {}, 7) in events
        assert ("histogram", "h", {}, 3) in events

    def test_detaching_hooks_restores_the_fast_path(self, registry):
        events = []
        hook = lambda *args: events.append(args)  # noqa: E731
        registry.hooks.append(hook)
        registry.counter("c").inc()
        registry.hooks.remove(hook)
        registry.counter("c").inc()
        assert len(events) == 1


class TestPromExposition:
    def test_prom_name_mapping(self):
        assert prom_name("serve.requests") == "serve_requests"
        assert prom_name("a-b c") == "a_b_c"
        assert prom_name("0weird") == "_0weird"

    def test_counter_rendered_with_total_suffix(self, registry):
        registry.counter("serve.requests", "requests").inc(3, method="step")
        text = registry.render_prom()
        assert "# TYPE serve_requests_total counter" in text
        assert 'serve_requests_total{method="step"} 3' in text

    def test_gauge_rendered_plain(self, registry):
        registry.gauge("covirt.sessions").set(2)
        assert "# TYPE covirt_sessions gauge" in registry.render_prom()
        assert "covirt_sessions 2" in registry.render_prom()

    def test_histogram_rendered_cumulative_with_inf(self, registry):
        h = registry.histogram("lat", buckets=(10, 100))
        h.observe(5)
        h.observe(50)
        h.observe(5000)
        text = registry.render_prom()
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="100"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 5055" in text
        assert "lat_count 3" in text

    def test_label_values_escaped(self, registry):
        registry.counter("c").inc(tenant='we"ird\\one')
        text = registry.render_prom()
        assert 'tenant="we\\"ird\\\\one"' in text

    def test_output_sorted_and_newline_terminated(self, registry):
        registry.counter("zz").inc()
        registry.counter("aa").inc()
        text = registry.render_prom()
        assert text.index("aa_total") < text.index("zz_total")
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_prom() == ""
