"""Perf-regression sentinel tests (repro.obs.sentinel + bench-compare)."""

from __future__ import annotations

import dataclasses
import json
import sys
from pathlib import Path

import pytest

from repro.cli import bench_compare_main
from repro.obs.sentinel import (
    ToleranceError,
    compare_sets,
    load_tolerances,
    render_markdown,
)
from repro.perf.costs import DEFAULT_COSTS

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TOLERANCES = REPO_ROOT / "benchmarks" / "tolerances.json"

sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
from runner import run_scenario  # noqa: E402


def write_doc(directory: Path, doc: dict) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{doc['bench']}.json"
    path.write_text(json.dumps(doc, indent=1) + "\n")
    return path


@pytest.fixture(scope="module")
def quick_fig4() -> dict:
    return run_scenario("fig4", quick=True)


@pytest.fixture
def tolerances() -> dict:
    return load_tolerances(TOLERANCES)


class TestTolerances:
    def test_checked_in_tolerances_load(self, tolerances):
        assert "fig4" in tolerances["benches"]
        assert tolerances["benches"]["fig4"]["metric"] == "attach_us"

    def test_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "t.json"
        bad.write_text(json.dumps({"schema": "nope", "schema_version": 1}))
        with pytest.raises(ToleranceError):
            load_tolerances(bad)

    def test_rejects_unknown_version(self, tmp_path):
        bad = tmp_path / "t.json"
        bad.write_text(
            json.dumps(
                {"schema": "covirt-bench-tolerances", "schema_version": 9}
            )
        )
        with pytest.raises(ToleranceError):
            load_tolerances(bad)

    def test_rejects_spec_without_metric(self, tmp_path):
        bad = tmp_path / "t.json"
        bad.write_text(
            json.dumps(
                {
                    "schema": "covirt-bench-tolerances",
                    "schema_version": 1,
                    "benches": {"fig3": {"key": ["workload"]}},
                }
            )
        )
        with pytest.raises(ToleranceError):
            load_tolerances(bad)


class TestCompare:
    def test_identical_sets_are_in_tolerance(
        self, tmp_path, quick_fig4, tolerances
    ):
        write_doc(tmp_path / "base", quick_fig4)
        write_doc(tmp_path / "cand", quick_fig4)
        report = compare_sets(
            tmp_path / "base", tmp_path / "cand", tolerances
        )
        assert report.ok
        assert report.benches_compared == ["fig4"]
        assert all(f.status == "ok" for f in report.findings)

    def test_missing_figure_fails(self, tmp_path, quick_fig4, tolerances):
        write_doc(tmp_path / "base", quick_fig4)
        (tmp_path / "cand").mkdir()
        other = dict(quick_fig4, bench="fig99")
        write_doc(tmp_path / "cand", other)
        report = compare_sets(
            tmp_path / "base", tmp_path / "cand", tolerances
        )
        assert not report.ok
        assert any("missing from candidate" in p for p in report.problems)
        assert any("missing from baseline" in p for p in report.problems)

    def test_quick_mode_mismatch_is_not_comparable(
        self, tmp_path, quick_fig4, tolerances
    ):
        write_doc(tmp_path / "base", quick_fig4)
        write_doc(tmp_path / "cand", dict(quick_fig4, quick=False))
        report = compare_sets(
            tmp_path / "base", tmp_path / "cand", tolerances
        )
        assert not report.ok
        assert any("quick-mode mismatch" in p for p in report.problems)

    def test_drifted_metric_trips_the_band(
        self, tmp_path, quick_fig4, tolerances
    ):
        write_doc(tmp_path / "base", quick_fig4)
        drifted = json.loads(json.dumps(quick_fig4))
        for row in drifted["results"]:
            row["attach_us"] = row["attach_us"] * 1.5
        write_doc(tmp_path / "cand", drifted)
        report = compare_sets(
            tmp_path / "base", tmp_path / "cand", tolerances
        )
        assert not report.ok
        bad = [f for f in report.regressions if f.metric == "attach_us"]
        assert bad and all(f.status == "out-of-band" for f in bad)

    def test_perturbed_cost_model_fails_bench_compare(
        self, tmp_path, quick_fig4, tolerances, capsys
    ):
        """The acceptance pin: a deliberately slowed cost model must make
        bench-compare exit non-zero against the stock baseline."""
        write_doc(tmp_path / "base", quick_fig4)
        slower = dataclasses.replace(
            DEFAULT_COSTS,
            xemem_control_rtt=DEFAULT_COSTS.xemem_control_rtt * 3,
            page_list_per_page=DEFAULT_COSTS.page_list_per_page * 3,
            guest_memmap_per_page=DEFAULT_COSTS.guest_memmap_per_page * 3,
        )
        write_doc(
            tmp_path / "cand",
            run_scenario("fig4", quick=True, costs=slower),
        )
        code = bench_compare_main(
            [
                str(tmp_path / "base"),
                str(tmp_path / "cand"),
                "--tolerances", str(TOLERANCES),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out
        assert "out-of-band" in out


class TestRendering:
    def test_markdown_is_deterministic(self, tmp_path, quick_fig4, tolerances):
        write_doc(tmp_path / "base", quick_fig4)
        write_doc(tmp_path / "cand", quick_fig4)
        report_a = compare_sets(tmp_path / "base", tmp_path / "cand", tolerances)
        report_b = compare_sets(tmp_path / "base", tmp_path / "cand", tolerances)
        assert render_markdown(report_a) == render_markdown(report_b)

    def test_markdown_has_summary_and_tables(
        self, tmp_path, quick_fig4, tolerances
    ):
        write_doc(tmp_path / "base", quick_fig4)
        write_doc(tmp_path / "cand", quick_fig4)
        report = compare_sets(tmp_path / "base", tmp_path / "cand", tolerances)
        text = render_markdown(report)
        assert "# bench-compare report" in text
        assert "verdict: OK" in text
        assert "| fig4 |" in text


class TestCli:
    def test_cli_writes_report_and_exits_zero(
        self, tmp_path, quick_fig4, capsys
    ):
        write_doc(tmp_path / "base", quick_fig4)
        write_doc(tmp_path / "cand", quick_fig4)
        out_md = tmp_path / "report.md"
        code = bench_compare_main(
            [
                str(tmp_path / "base"),
                str(tmp_path / "cand"),
                "--tolerances", str(TOLERANCES),
                "--out", str(out_md),
            ]
        )
        assert code == 0
        assert out_md.read_text() == capsys.readouterr().out

    def test_cli_bad_tolerances_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "t.json"
        bad.write_text("{}")
        code = bench_compare_main(
            [str(tmp_path), str(tmp_path), "--tolerances", str(bad)]
        )
        assert code == 2
        assert "bad tolerances" in capsys.readouterr().err

    def test_empty_directories_fail(self, tmp_path, capsys):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        code = bench_compare_main(
            [
                str(tmp_path / "a"),
                str(tmp_path / "b"),
                "--tolerances", str(TOLERANCES),
            ]
        )
        assert code == 1
