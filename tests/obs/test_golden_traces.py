"""Golden-trace regression tests.

The canonical boot → probe → reconfigure → fault-containment →
recovery → checkpoint → fuzz scenario is run under a fixed seed and its
timestamp-free span transcript (nesting + track + name per span) is
pinned against ``golden/canonical_trace.txt``.  Renaming or dropping an
instrumented span — in the hypervisor exit path, the controller, the
recovery supervisor, or the fuzz engine — fails here; cost-model
changes (which only move timestamps) do not.

After an *intentional* instrumentation change, regenerate with::

    pytest tests/obs/test_golden_traces.py --update-golden
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs.export import chrome_trace
from repro.obs.schema import validate_chrome_trace
from repro.obs.scenario import run_canonical_scenario

GOLDEN = Path(__file__).parent / "golden" / "canonical_trace.txt"

#: Exit-path spans the canonical scenario must always traverse; listed
#: explicitly so a rename fails with a readable message even before the
#: full-transcript diff below.
REQUIRED_SPANS = {
    "hv.launch",
    "hv.dispatch.msr_write",
    "hv.exit.msr_write",
    "hv.dispatch.io_instruction",
    "hv.exit.io_instruction",
    "hv.dispatch.cpuid",
    "hv.dispatch.xsetbv",
    "hv.dispatch.apic_write",
    "hv.dispatch.ept_violation",
    "hv.exit.ept_violation",
    "hv.exit.exception_or_nmi",
    "hv.nmi",
    "hv.drain",
    "hv.terminate",
    "controller.launch",
    "controller.command.ping",
    "controller.command.memory_update",
    "controller.fault",
    "recovery.detected",
    "recovery.recover",
    "recovery.scrub",
    "recovery.relaunch",
    "recovery.replay",
    "recovery.checkpoint",
    "xemem.grant",
    "xemem.attach",
    "xemem.detach",
    "hobbes.cmd",
}


@pytest.fixture(scope="module")
def canonical_env():
    return run_canonical_scenario()


@pytest.fixture(scope="module")
def tracer(canonical_env):
    return canonical_env.machine.obs.tracer


class TestGoldenTranscript:
    def test_matches_checked_in_golden(self, tracer, update_golden):
        transcript = "\n".join(tracer.golden_lines()) + "\n"
        if update_golden:
            GOLDEN.write_text(transcript)
        assert transcript == GOLDEN.read_text(), (
            "span transcript diverged from tests/obs/golden/"
            "canonical_trace.txt — if the instrumentation change is"
            " intentional, rerun with --update-golden"
        )

    def test_every_exit_path_span_present(self, tracer):
        names = set(tracer.names())
        missing = REQUIRED_SPANS - names
        assert not missing, f"instrumented spans missing: {sorted(missing)}"

    def test_fault_containment_nests_under_the_exit(self, tracer):
        """The recovery story the paper tells: termination and recovery
        are *descendants* of the EPT-violation dispatch."""
        lines = tracer.golden_lines()
        dispatch = next(
            i for i, l in enumerate(lines) if "hv.dispatch.ept_violation" in l
        )
        recover = next(i for i, l in enumerate(lines) if "recovery.recover" in l)
        assert recover > dispatch
        dispatch_depth = (len(lines[dispatch]) - len(lines[dispatch].lstrip())) // 2
        recover_depth = (len(lines[recover]) - len(lines[recover].lstrip())) // 2
        assert recover_depth > dispatch_depth

    def test_a_dropped_span_would_fail(self, tracer):
        """Self-check of the mechanism: removing any one line no longer
        matches the golden file."""
        lines = tracer.golden_lines()
        mutated = "\n".join(lines[1:]) + "\n"
        assert mutated != GOLDEN.read_text()


class TestDeterminism:
    def test_two_same_seed_runs_identical(self, tracer):
        second = run_canonical_scenario()
        key = lambda t: [
            (s.name, s.track, s.depth, s.start, s.end) for s in t.spans
        ]
        assert key(second.machine.obs.tracer) == key(tracer)

    def test_metrics_identical_across_runs(self, canonical_env):
        import json

        second = run_canonical_scenario()
        dump = lambda env: json.dumps(
            env.machine.obs.metrics.to_dict(), sort_keys=True
        )
        assert dump(second) == dump(canonical_env)

    def test_timestamps_are_simulated_cycles_not_wall_clock(self, tracer):
        for span in tracer.spans:
            assert isinstance(span.start, int) and span.start >= 0
            assert span.end is None or isinstance(span.end, int)
        # Wall-clock (ns since epoch) would dwarf any simulated extent.
        assert max(s.start for s in tracer.spans) < 10**15

    def test_all_spans_closed_and_capacity_untouched(self, tracer):
        assert tracer.open_depth == 0
        assert tracer.dropped == 0
        assert all(span.closed for span in tracer.spans)


class TestExportOfCanonicalRun:
    def test_canonical_trace_exports_as_valid_chrome_trace(self, tracer):
        doc = chrome_trace(tracer.spans)
        assert validate_chrome_trace(doc) == []
        tracks = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"scenario", "controller", "recovery", "fuzz"} <= tracks
