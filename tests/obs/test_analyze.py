"""Trace analytics tests (repro.obs.analyze + the trace-analyze CLI)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.hw.clock import Clock
from repro.obs.analyze import (
    critical_path,
    diff_traces,
    exit_attribution,
    load_chrome_trace,
    load_golden_transcript,
    load_trace,
    render_diff,
    render_report,
    rollups,
)
from repro.obs.export import chrome_trace
from repro.obs.scenario import run_canonical_scenario
from repro.obs.spans import SpanTracer


def make_tracer() -> SpanTracer:
    """outer(0..100) { inner(10..40) { leaf(20..30) }, hv.exit(50..90) }"""
    tracer = SpanTracer(Clock())
    outer = tracer.begin("outer", track="core0", now=0)
    inner = tracer.begin("inner", track="core0", now=10)
    tracer.complete("leaf", 20, 30, track="core0")
    tracer.end(inner, now=40)
    tracer.complete(
        "hv.exit.ept_violation", 50, 90, track="core0", enclave=1
    )
    tracer.end(outer, now=100)
    return tracer


@pytest.fixture
def model():
    return load_chrome_trace(chrome_trace(make_tracer().spans))


class TestLoaders:
    def test_chrome_roundtrip_rebuilds_nesting(self, model):
        assert [s.name for s in model.spans] == [
            "outer", "inner", "leaf", "hv.exit.ept_violation"
        ]
        outer = model.spans[0]
        assert outer.depth == 0
        assert [c.name for c in outer.children] == [
            "inner", "hv.exit.ept_violation"
        ]
        assert outer.children[0].children[0].name == "leaf"

    def test_chrome_durations_exact_in_cycles(self, model):
        by_name = {s.name: s for s in model.spans}
        assert by_name["outer"].duration == 100
        assert by_name["inner"].duration == 30
        assert by_name["hv.exit.ept_violation"].duration == 40

    def test_rejects_non_trace_document(self):
        with pytest.raises(ValueError):
            load_chrome_trace({"not": "a trace"})

    def test_golden_transcript_loads_structure_only(self):
        model = load_golden_transcript(
            [
                "[scenario] scenario.boot",
                "  [core0] hv.launch",
                "  [core0] hv.exit.cpuid",
                "[scenario] scenario.fault",
            ]
        )
        assert not model.timed
        boot = model.spans[0]
        assert [c.name for c in boot.children] == [
            "hv.launch", "hv.exit.cpuid"
        ]
        assert model.spans[3].depth == 0

    def test_golden_transcript_rejects_malformed_line(self):
        with pytest.raises(ValueError):
            load_golden_transcript(["no track marker"])

    def test_load_trace_sniffs_format(self, tmp_path):
        doc = chrome_trace(make_tracer().spans)
        json_path = tmp_path / "t.json"
        json_path.write_text(json.dumps(doc))
        txt_path = tmp_path / "t.txt"
        txt_path.write_text("[a] x\n")
        assert load_trace(json_path).timed
        assert not load_trace(txt_path).timed


class TestAnalytics:
    def test_critical_path_descends_by_duration(self, model):
        path = critical_path(model, "core0")
        assert [s.name for s in path] == ["outer", "hv.exit.ept_violation"]

    def test_critical_path_empty_track(self, model):
        assert critical_path(model, "nope") == []

    def test_exit_attribution_by_reason_and_enclave(self, model):
        table = exit_attribution(model)
        assert set(table) == {"ept_violation"}
        row = table["ept_violation"]
        assert row["count"] == 1
        assert row["cycles"] == 40
        assert row["by_enclave"]["1"] == {"count": 1, "cycles": 40}

    def test_rollups_fold_paths_with_self_time(self, model):
        folds = rollups(model)
        assert folds["[core0];outer"]["cycles"] == 100
        # outer self = 100 - (30 + 40) = 30
        assert folds["[core0];outer"]["self"] == 30
        assert folds["[core0];outer;inner;leaf"]["count"] == 1


class TestDiff:
    def test_identical_traces_diff_empty(self, model):
        other = load_chrome_trace(chrome_trace(make_tracer().spans))
        assert diff_traces(model, other).empty

    def test_detects_added_and_removed_paths(self, model):
        tracer = make_tracer()
        tracer.complete("extra", 95, 99, track="core0")
        other = load_chrome_trace(chrome_trace(tracer.spans))
        diff = diff_traces(model, other)
        assert "[core0];outer;extra" in diff.added
        assert not diff.removed

    def test_detects_retiming_beyond_threshold(self, model):
        tracer = SpanTracer(Clock())
        outer = tracer.begin("outer", track="core0", now=0)
        inner = tracer.begin("inner", track="core0", now=10)
        tracer.complete("leaf", 20, 30, track="core0")
        tracer.end(inner, now=40)
        tracer.complete(
            "hv.exit.ept_violation", 50, 90, track="core0", enclave=1
        )
        tracer.end(outer, now=200)  # outer retimed 100 → 200
        other = load_chrome_trace(chrome_trace(tracer.spans))
        diff = diff_traces(model, other, threshold=0.05)
        assert diff.retimed["[core0];outer"] == (100, 200)
        # Below-threshold differences stay quiet.
        assert "[core0];outer;inner" not in diff.retimed

    def test_count_changes_reported_even_untimed(self):
        a = load_golden_transcript(["[t] x", "[t] x"])
        b = load_golden_transcript(["[t] x"])
        diff = diff_traces(a, b)
        assert diff.recounted["[t];x"] == (2, 1)


class TestRendering:
    def test_report_deterministic(self, model):
        again = load_chrome_trace(chrome_trace(make_tracer().spans))
        assert render_report(model) == render_report(again)

    def test_diff_render_mentions_each_kind(self, model):
        tracer = make_tracer()
        tracer.complete("extra", 95, 99, track="core0")
        other = load_chrome_trace(chrome_trace(tracer.spans))
        text = render_diff(diff_traces(model, other))
        assert "added    [core0];outer;extra" in text

    def test_identical_render_says_so(self, model):
        text = render_diff(diff_traces(model, model))
        assert "structurally identical" in text


class TestCli:
    def test_trace_analyze_report_is_deterministic(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        env = run_canonical_scenario()
        trace.write_text(
            json.dumps(chrome_trace(env.machine.obs.tracer.spans))
        )
        assert cli_main(["trace-analyze", str(trace)]) == 0
        first = capsys.readouterr().out
        assert cli_main(["trace-analyze", str(trace)]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "critical path" in first
        assert "exit latency attribution" in first

    def test_trace_analyze_diff_exit_codes(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(chrome_trace(make_tracer().spans)))
        tracer = make_tracer()
        tracer.complete("extra", 95, 99, track="core0")
        b.write_text(json.dumps(chrome_trace(tracer.spans)))
        assert cli_main(
            ["trace-analyze", str(a), "--diff", str(a), "--fail-on-diff"]
        ) == 0
        capsys.readouterr()
        assert cli_main(
            ["trace-analyze", str(a), "--diff", str(b), "--fail-on-diff"]
        ) == 1
        out = capsys.readouterr().out
        assert "added" in out
