"""Canonical-scenario coverage + export/metric edge cases.

The golden-trace tests pin the scenario's transcript; these tests pin
its *semantics* (which subsystems each phase exercises) and the edge
behaviour of the exporters the scenario feeds: empty and single-span
traces, histogram bucket boundaries, and the counters the new
instrumentation maintains.
"""

from __future__ import annotations

import pytest

from repro.hw.clock import Clock
from repro.obs import metric_names, validate_chrome_trace
from repro.obs.export import chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.scenario import (
    CANONICAL_LAYOUT,
    WILD_ADDR,
    run_canonical_scenario,
)
from repro.obs.spans import SpanTracer


@pytest.fixture(scope="module")
def env():
    return run_canonical_scenario()


class TestScenarioPhases:
    def test_phase_spans_in_order(self, env):
        tracer = env.machine.obs.tracer
        phases = [
            s.name for s in tracer.spans if s.name.startswith("scenario.")
        ]
        assert phases == [
            "scenario.boot",
            "scenario.probe",
            "scenario.reconfigure",
            "scenario.share",
            "scenario.fault",
            "scenario.checkpoint",
            "scenario.fuzz",
        ]

    def test_share_phase_exercises_xemem_and_channels(self, env):
        metrics = env.machine.obs.metrics
        ops = metrics.get(metric_names.XEMEM_OPS)
        assert ops is not None
        assert ops.get(op="grant") >= 1
        assert ops.get(op="attach") >= 1
        assert ops.get(op="detach") >= 1
        hist = metrics.get(metric_names.XEMEM_OP_CYCLES)
        assert hist.count(op="attach") >= 1
        msgs = metrics.get(metric_names.HOBBES_MSGS)
        # One host_send + one enclave_send per run.
        assert msgs.get(direction="to_enclave", kind="ping", enclave=1) == 1
        assert msgs.get(direction="to_host", kind="pong", enclave=1) == 1

    def test_fault_phase_counts_a_postmortem(self, env):
        counter = env.machine.obs.metrics.get(metric_names.POSTMORTEMS)
        assert counter is not None
        assert counter.get(trigger="containment") >= 1

    def test_layout_and_fault_address_are_stable(self):
        # Pins the constants the containment story depends on: the wild
        # address must live in the host half, outside the enclave.
        assert WILD_ADDR >= 32 * (1 << 30)
        assert sum(CANONICAL_LAYOUT.cores_per_zone.values()) == 2

    def test_scenario_env_is_reusable(self, env):
        # The returned environment is live: the machine keeps working
        # after the run (consumers export more traces from it).
        assert env.host.alive
        assert env.machine.obs.tracer.open_depth == 0


class TestExportEdgeCases:
    def test_empty_trace_export(self):
        doc = chrome_trace([])
        # Structure holds (process metadata only) but the validator
        # flags the absence of complete events.
        assert doc["traceEvents"][0]["name"] == "process_name"
        problems = validate_chrome_trace(doc)
        assert any("no complete" in p for p in problems)

    def test_single_span_trace(self):
        tracer = SpanTracer(Clock())
        tracer.complete("only", 5, 9, track="solo")
        doc = chrome_trace(tracer.spans)
        assert validate_chrome_trace(doc) == []
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 1
        assert complete[0]["name"] == "only"
        assert complete[0]["args"]["cycles"] == 4
        threads = [
            e for e in doc["traceEvents"] if e.get("name") == "thread_name"
        ]
        assert [t["args"]["name"] for t in threads] == ["solo"]


class TestHistogramBoundaries:
    @pytest.fixture
    def hist(self):
        registry = MetricsRegistry()
        return registry.histogram("h", buckets=(10, 100, 1000))

    def counts(self, hist):
        ((_, stats),) = hist.samples()
        return stats["counts"]

    def test_zero_lands_in_first_bucket(self, hist):
        hist.observe(0)
        assert self.counts(hist) == [1, 0, 0, 0]

    def test_exact_bucket_edge_is_inclusive(self, hist):
        # bisect_left: value == bound counts inside that bound (le
        # semantics, like Prometheus).
        hist.observe(10)
        hist.observe(100)
        hist.observe(1000)
        assert self.counts(hist) == [1, 1, 1, 0]

    def test_just_past_an_edge_spills_to_the_next_bucket(self, hist):
        hist.observe(11)
        assert self.counts(hist) == [0, 1, 0, 0]

    def test_beyond_max_bound_lands_in_overflow(self, hist):
        hist.observe(10**9)
        assert self.counts(hist) == [0, 0, 0, 1]

    def test_sum_and_count_track_boundary_values(self, hist):
        for v in (0, 10, 1001):
            hist.observe(v)
        assert hist.count() == 3
        assert hist.sum() == 1011
