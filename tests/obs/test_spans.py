"""Unit tests for the span tracer (repro.obs.spans)."""

from __future__ import annotations

import pytest

from repro.hw.clock import Clock
from repro.obs.spans import NULL_SPAN, Span, SpanTracer


@pytest.fixture
def clock() -> Clock:
    return Clock()


@pytest.fixture
def tracer(clock: Clock) -> SpanTracer:
    return SpanTracer(clock)


class TestNesting:
    def test_begin_end_records_interval(self, tracer, clock):
        span = tracer.begin("outer")
        clock.advance(100)
        tracer.end(span)
        assert span.start == 0 and span.end == 100
        assert span.duration == 100
        assert span.closed

    def test_children_nest_under_open_span(self, tracer, clock):
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1 and outer.depth == 0
        tracer.end(inner)
        tracer.end(outer)
        assert tracer.open_depth == 0

    def test_context_manager(self, tracer, clock):
        with tracer.span("outer"):
            clock.advance(10)
            with tracer.span("inner"):
                clock.advance(5)
        assert tracer.names() == ["outer", "inner"]
        outer, inner = tracer.spans
        assert outer.end == 15 and inner.start == 10

    def test_dangling_children_closed_defensively(self, tracer, clock):
        outer = tracer.begin("outer")
        tracer.begin("leaked")
        clock.advance(50)
        tracer.end(outer)  # closes "leaked" too
        assert all(span.closed for span in tracer.spans)
        assert tracer.open_depth == 0

    def test_complete_records_as_child_of_open_span(self, tracer):
        outer = tracer.begin("outer")
        done = tracer.complete("pre-timed", 10, 30)
        assert done.parent_id == outer.span_id
        assert done.depth == 1
        assert (done.start, done.end) == (10, 30)
        tracer.end(outer)

    def test_complete_clamps_inverted_interval(self, tracer):
        span = tracer.complete("odd", 30, 10)
        assert span.end == span.start == 30

    def test_instant_is_zero_duration(self, tracer, clock):
        clock.advance(7)
        span = tracer.instant("marker")
        assert span.start == span.end == 7
        assert span.duration == 0


class TestTimestamps:
    def test_now_accepts_literal_and_callable(self, tracer, clock):
        tsc = 1000

        span = tracer.begin("core-timed", now=lambda: tsc)
        tsc = 1200
        tracer.end(span, now=lambda: tsc)
        assert (span.start, span.end) == (1000, 1200)
        literal = tracer.begin("literal", now=5)
        tracer.end(literal, now=9)
        assert (literal.start, literal.end) == (5, 9)

    def test_end_never_precedes_start(self, tracer, clock):
        span = tracer.begin("s", now=100)
        tracer.end(span, now=50)  # e.g. ended on a core behind the opener
        assert span.end == span.start == 100

    def test_default_timestamps_come_from_clock(self, tracer, clock):
        clock.advance(42)
        span = tracer.begin("s")
        assert span.start == 42


class TestGoldenLines:
    def test_format_is_indent_track_name(self, tracer, clock):
        with tracer.span("outer", track="scenario"):
            with tracer.span("inner", track="core0"):
                pass
        assert tracer.golden_lines() == [
            "[scenario] outer",
            "  [core0] inner",
        ]

    def test_no_timestamps_leak_into_golden_lines(self, tracer, clock):
        clock.advance(123456)
        with tracer.span("s", track="t"):
            clock.advance(999)
        assert tracer.golden_lines() == ["[t] s"]


class TestCapacityAndClear:
    def test_capacity_bounds_retention(self, clock):
        tracer = SpanTracer(clock, capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 2

    def test_zero_capacity_rejected(self, clock):
        with pytest.raises(ValueError):
            SpanTracer(clock, capacity=0)

    def test_clear_keeps_open_spans(self, tracer, clock):
        open_span = tracer.begin("still-open")
        with tracer.span("done"):
            pass
        tracer.clear()
        assert tracer.spans == [open_span]
        assert tracer.dropped == 0
        tracer.end(open_span)

    def test_args_captured_and_mutable_until_export(self, tracer):
        with tracer.span("s", step=3) as span:
            span.args["outcome"] = "ok"
        assert tracer.spans[0].args == {"step": 3, "outcome": "ok"}

    def test_render_includes_timestamps(self, tracer, clock):
        with tracer.span("named"):
            clock.advance(10)
        rendered = tracer.render()
        assert "named" in rendered and "10" in rendered


class TestSpanDataclass:
    def test_open_span_duration_zero(self):
        span = Span(0, None, 0, "s", "", "main", start=5)
        assert span.duration == 0
        assert not span.closed


class TestFastPathGate:
    """The zero-overhead contract: while ``enabled`` is False every
    recording call returns the shared NULL_SPAN and touches nothing —
    no clock read, no span list growth, no observer call."""

    def test_disabled_calls_return_the_shared_sentinel(self, tracer):
        tracer.enabled = False
        a = tracer.begin("a")
        b = tracer.complete("b", 0, 10)
        c = tracer.instant("c")
        assert a is NULL_SPAN and b is NULL_SPAN and c is NULL_SPAN
        assert len(tracer) == 0 and tracer.open_depth == 0

    def test_disabled_end_is_a_no_op(self, tracer):
        tracer.enabled = False
        span = tracer.begin("never")
        tracer.end(span)  # must not raise, must not record
        assert len(tracer) == 0
        assert NULL_SPAN.end == 0, "the sentinel is never mutated"

    def test_disabled_tracer_never_reads_the_clock(self):
        class ExplodingClock:
            @property
            def now(self):  # pragma: no cover - the assertion *is* the test
                raise AssertionError("fast path read the clock")

        quiet = SpanTracer(ExplodingClock())
        quiet.enabled = False
        quiet.begin("a")
        quiet.instant("b")
        with quiet.span("c"):
            pass

    def test_disabled_calls_skip_observers(self, tracer):
        closed = []
        tracer.on_close.append(closed.append)
        tracer.enabled = False
        tracer.complete("quiet", 0, 5)
        assert closed == []
        tracer.enabled = True
        tracer.complete("loud", 0, 5)
        assert [span.name for span in closed] == ["loud"]

    def test_open_spans_close_across_a_disable_window(self, tracer, clock):
        """Spans opened while enabled keep closing normally even if the
        gate drops mid-flight — the stack can never wedge."""
        outer = tracer.begin("outer")
        tracer.enabled = False
        assert tracer.begin("ignored") is NULL_SPAN
        tracer.enabled = True
        clock.advance(7)
        tracer.end(outer)
        assert tracer.open_depth == 0
        assert outer.closed and outer.duration == 7

    def test_reenabling_resumes_recording(self, tracer):
        tracer.enabled = False
        tracer.complete("dark", 0, 1)
        tracer.enabled = True
        tracer.complete("light", 0, 1)
        assert tracer.names() == ["light"]
