"""The optional ``wall_seconds`` field: schema validation, the runner
stamping it outside the deterministic scenario body, and the sentinel's
wide wall-clock band."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.schema import validate_bench
from repro.obs.sentinel import (
    DEFAULT_WALL_SECONDS_REL_TOL,
    compare_docs,
    load_tolerances,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_runner():
    spec = importlib.util.spec_from_file_location(
        "bench_runner_ws", REPO_ROOT / "benchmarks" / "runner.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def runner():
    return _load_runner()


@pytest.fixture(scope="module")
def recovery_doc(runner):
    return runner.run_scenario("recovery", quick=True)


class TestSchema:
    def test_absent_wall_seconds_is_valid(self, recovery_doc):
        assert "wall_seconds" not in recovery_doc  # scenario body is pure
        assert validate_bench(recovery_doc) == []

    @pytest.mark.parametrize("value", [0, 0.0, 1.5, 3600])
    def test_sane_values_accepted(self, recovery_doc, value):
        doc = dict(recovery_doc, wall_seconds=value)
        assert validate_bench(doc) == []

    @pytest.mark.parametrize("value", [True, False, "1.5", None, [1]])
    def test_non_numeric_rejected(self, recovery_doc, value):
        doc = dict(recovery_doc, wall_seconds=value)
        assert any("wall_seconds" in p for p in validate_bench(doc))

    def test_negative_rejected(self, recovery_doc):
        doc = dict(recovery_doc, wall_seconds=-0.1)
        assert any("wall_seconds" in p for p in validate_bench(doc))


class TestRunnerStamping:
    def test_main_stamps_wall_seconds(self, runner, tmp_path, capsys):
        rc = runner.main(
            ["--quick", "--only", "recovery", "--out-dir", str(tmp_path)]
        )
        assert rc == 0
        doc = json.loads((tmp_path / "BENCH_recovery.json").read_text())
        assert isinstance(doc["wall_seconds"], float)
        assert doc["wall_seconds"] >= 0
        assert "s wall" in capsys.readouterr().out

    def test_run_scenario_stays_deterministic(self, runner, recovery_doc):
        # The field must never leak into run_scenario() itself — that
        # would break byte-identical reruns.
        again = runner.run_scenario("recovery", quick=True)
        assert json.dumps(recovery_doc, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )


def _mini_doc(**extra):
    doc = {"sim_cycles": 1000, "results": []}
    doc.update(extra)
    return doc


class TestSentinelBand:
    TOL = {"global": {"sim_cycles_rel_tol": 0.1, "wall_seconds_rel_tol": 2.0}}

    def _wall_findings(self, baseline, candidate, tolerances=None):
        findings = compare_docs(
            "recovery", baseline, candidate, tolerances or self.TOL
        )
        return [f for f in findings if f.metric == "wall_seconds"]

    def test_compared_only_when_both_docs_carry_it(self):
        assert self._wall_findings(_mini_doc(), _mini_doc()) == []
        assert self._wall_findings(
            _mini_doc(wall_seconds=1.0), _mini_doc()
        ) == []
        assert self._wall_findings(
            _mini_doc(), _mini_doc(wall_seconds=1.0)
        ) == []
        findings = self._wall_findings(
            _mini_doc(wall_seconds=1.0), _mini_doc(wall_seconds=1.5)
        )
        assert len(findings) == 1 and findings[0].status == "ok"

    def test_band_trips_on_blowup_not_jitter(self):
        # 2.9x is within the 2.0 relative band; 3.1x is out.
        ok = self._wall_findings(
            _mini_doc(wall_seconds=1.0), _mini_doc(wall_seconds=2.9)
        )
        assert ok[0].status == "ok"
        bad = self._wall_findings(
            _mini_doc(wall_seconds=1.0), _mini_doc(wall_seconds=3.1)
        )
        assert bad[0].status == "out-of-band"

    def test_default_band_used_when_config_lacks_one(self):
        assert DEFAULT_WALL_SECONDS_REL_TOL == 2.0
        findings = self._wall_findings(
            _mini_doc(wall_seconds=1.0), _mini_doc(wall_seconds=10.0),
            tolerances={"global": {}},
        )
        assert findings[0].status == "out-of-band"

    def test_committed_tolerances_carry_the_band(self):
        tolerances = load_tolerances(REPO_ROOT / "benchmarks" / "tolerances.json")
        assert tolerances["global"]["wall_seconds_rel_tol"] == 2.0
        assert tolerances["benches"]["serve"]["metric"] == "requests_per_sec"
