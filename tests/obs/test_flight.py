"""Flight recorder + post-mortem bundle tests (repro.obs.flight)."""

from __future__ import annotations

import json

import pytest

from repro.fuzz.engine import FuzzEngine
from repro.fuzz.oracles import OracleViolation
from repro.hw.clock import Clock
from repro.obs import Observability, metric_names
from repro.obs.flight import (
    DEFAULT_FLIGHT_CAPACITY,
    FlightRecorder,
    MAX_RETAINED_POSTMORTEMS,
    POSTMORTEM_SCHEMA_NAME,
    POSTMORTEM_SCHEMA_VERSION,
)
from repro.obs.scenario import run_canonical_scenario
from repro.obs.schema import validate_postmortem


@pytest.fixture
def obs() -> Observability:
    return Observability(Clock())


class TestRing:
    def test_span_close_feeds_the_ring(self, obs):
        with obs.tracer.span("work", track="t"):
            obs.tracer.clock.advance(10)
        assert len(obs.flight) == 1
        event = obs.flight.tail()[0]
        assert event["type"] == "span"
        assert event["name"] == "work"
        assert event["end"] - event["start"] == 10

    def test_metric_updates_feed_the_ring(self, obs):
        obs.metrics.counter("c").inc(reason="x")
        obs.metrics.gauge("g").set(3)
        obs.metrics.histogram("h").observe(42)
        kinds = [e["kind"] for e in obs.flight.tail()]
        assert kinds == ["counter", "gauge", "histogram"]
        labels = obs.flight.tail()[0]["labels"]
        assert labels == {"reason": "x"}

    def test_notes_carry_extra_detail(self, obs):
        obs.flight.note("containment", "core 3 went down", fault_kind="ept")
        event = obs.flight.tail()[0]
        assert event["type"] == "note"
        assert event["extra"] == {"fault_kind": "ept"}

    def test_wraparound_keeps_only_last_capacity_events(self):
        clock = Clock()
        recorder = FlightRecorder(clock, capacity=8)
        for i in range(20):
            recorder.note("n", f"event {i}")
        assert len(recorder) == 8
        assert recorder.recorded == 20
        details = [e["detail"] for e in recorder.tail()]
        assert details == [f"event {i}" for i in range(12, 20)]

    def test_wraparound_through_the_wired_observability(self):
        obs = Observability(Clock())
        obs.flight._ring = type(obs.flight._ring)(maxlen=4)
        obs.flight.capacity = 4
        for i in range(10):
            obs.metrics.counter("c").inc(i=i)
        assert len(obs.flight) == 4
        assert obs.flight.recorded == 10

    def test_default_capacity(self, obs):
        assert obs.flight.capacity == DEFAULT_FLIGHT_CAPACITY

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(Clock(), capacity=0)

    def test_clear_resets_ring_and_bundles_but_keeps_providers(self, obs):
        obs.flight.register_context("x", lambda: {"a": 1})
        obs.flight.note("n", "e")
        obs.flight.postmortem("t")
        obs.flight.clear()
        assert len(obs.flight) == 0
        assert obs.flight.recorded == 0
        assert not obs.flight.postmortems
        assert "x" in obs.flight.context_providers

    def test_reset_rewires_the_feeds(self, obs):
        obs.reset()
        obs.metrics.counter("c").inc()
        with obs.tracer.span("s"):
            pass
        types = [e["type"] for e in obs.flight.tail()]
        assert types == ["metric", "span"]


class TestPostmortem:
    def test_bundle_shape_and_schema(self, obs):
        obs.flight.register_context("covirt", lambda: {"enclaves": {}})
        obs.metrics.counter("c").inc()
        bundle = obs.flight.postmortem(
            "containment", "wild read", core=3
        )
        assert bundle["schema"] == POSTMORTEM_SCHEMA_NAME
        assert bundle["schema_version"] == POSTMORTEM_SCHEMA_VERSION
        assert bundle["trigger"] == "containment"
        assert bundle["reason"] == "wild read"
        assert bundle["detail"] == {"core": 3}
        assert bundle["context"] == {"covirt": {"enclaves": {}}}
        assert validate_postmortem(bundle) == []

    def test_bundles_are_sequenced_and_bounded(self, obs):
        obs.metrics.counter("c").inc()
        for _ in range(MAX_RETAINED_POSTMORTEMS + 5):
            obs.flight.postmortem("t")
        assert len(obs.flight.postmortems) == MAX_RETAINED_POSTMORTEMS
        seqs = [b["seq"] for b in obs.flight.postmortems]
        assert seqs == sorted(seqs)

    def test_postmortem_increments_its_own_counter(self, obs):
        obs.metrics.counter("c").inc()  # ensure the ring is non-empty
        obs.flight.postmortem("oracle")
        counter = obs.metrics.get(metric_names.POSTMORTEMS)
        assert counter is not None
        assert counter.get(trigger="oracle") == 1

    def test_dump_dir_writes_sorted_key_json(self, obs, tmp_path):
        obs.flight.dump_dir = tmp_path
        obs.metrics.counter("c").inc()
        bundle = obs.flight.postmortem("containment", "r")
        (path,) = obs.flight.dumped_paths
        assert path.name == "postmortem_000_containment.json"
        loaded = json.loads(path.read_text())
        assert loaded["trigger"] == "containment"
        assert validate_postmortem(loaded) == []
        assert loaded["seq"] == bundle["seq"]


class TestValidatePostmortem:
    def test_rejects_non_object(self):
        assert validate_postmortem([]) != []

    def test_rejects_wrong_schema_version(self, obs):
        obs.metrics.counter("c").inc()
        bundle = obs.flight.postmortem("t")
        bundle["schema_version"] = 99
        assert any(
            "schema_version" in p for p in validate_postmortem(bundle)
        )

    def test_rejects_empty_event_tail(self, obs):
        bundle = obs.flight.postmortem("t")
        assert any("events" in p for p in validate_postmortem(bundle))

    def test_rejects_unknown_event_type(self, obs):
        obs.metrics.counter("c").inc()
        bundle = obs.flight.postmortem("t")
        bundle["events"][0]["type"] = "martian"
        assert validate_postmortem(bundle) != []


class TestWiredScenario:
    def test_containment_leaves_a_schema_valid_dump_on_disk(self, tmp_path):
        env = run_canonical_scenario(postmortem_dir=tmp_path)
        paths = env.machine.obs.flight.dumped_paths
        assert paths, "containment fault should have dumped a post-mortem"
        bundle = json.loads(paths[0].read_text())
        assert validate_postmortem(bundle) == []
        assert bundle["trigger"] == "containment"
        # The controller's context section reflects the machine.
        assert "covirt" in bundle["context"]
        assert "recovery" in bundle["context"]
        assert bundle["context"]["covirt"]["enclaves"]
        # The ring's lead-up includes the hypervisor's containment note.
        assert any(
            e.get("type") == "note" and e.get("kind") == "containment"
            for e in bundle["events"]
        )

    def test_same_seed_dumps_are_byte_identical(self, tmp_path):
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        run_canonical_scenario(postmortem_dir=a_dir)
        run_canonical_scenario(postmortem_dir=b_dir)
        a_files = sorted(p.name for p in a_dir.iterdir())
        b_files = sorted(p.name for p in b_dir.iterdir())
        assert a_files == b_files and a_files
        for name in a_files:
            assert (a_dir / name).read_bytes() == (b_dir / name).read_bytes()

    def test_flight_recording_does_not_perturb_fuzz_fingerprints(self):
        # The recorder is passive: the fingerprint of a fuzz run must
        # not change because spans/metrics flowed into the ring.
        run_a = FuzzEngine(seed=99, schedule="baseline").run(30)
        engine_b = FuzzEngine(seed=99, schedule="baseline")
        engine_b.env.machine.obs.flight.note("noise", "extra ring traffic")
        run_b = engine_b.run(30)
        assert run_a.fingerprint == run_b.fingerprint

    def test_oracle_violation_snapshots_a_postmortem(self):
        engine = FuzzEngine(seed=7, schedule="baseline")
        flight = engine.env.machine.obs.flight
        engine.env.machine.obs.metrics.counter("c").inc()

        def broken(env):
            raise AssertionError("forced for the test")

        engine.oracles.add("synthetic", broken)
        with pytest.raises(OracleViolation):
            engine.oracles.check_all()
        assert flight.postmortems
        assert flight.postmortems[-1]["trigger"] == "oracle"
        assert flight.postmortems[-1]["detail"]["oracle"] == "synthetic"


class TestIdentityStamping:
    def test_identity_stamped_into_bundles(self, obs):
        obs.flight.identity = {
            "tenant": "t-alice",
            "session_id": "s-1",
            "scenario": "baseline",
            "seed": 0x5EED,
        }
        obs.metrics.counter("c").inc()
        bundle = obs.flight.postmortem("containment", "wild read")
        assert bundle["identity"]["tenant"] == "t-alice"
        assert bundle["identity"]["seed"] == 0x5EED
        assert validate_postmortem(bundle) == []

    def test_unstamped_recorder_omits_nothing_required(self, obs):
        obs.metrics.counter("c").inc()
        bundle = obs.flight.postmortem("t")
        assert bundle["identity"] == {}
        assert validate_postmortem(bundle) == []

    def test_validator_rejects_non_object_identity(self, obs):
        obs.metrics.counter("c").inc()
        bundle = obs.flight.postmortem("t")
        bundle["identity"] = ["tenant", "t"]
        assert any("identity" in p for p in validate_postmortem(bundle))

    def test_validator_rejects_nested_identity_values(self, obs):
        obs.metrics.counter("c").inc()
        bundle = obs.flight.postmortem("t")
        bundle["identity"] = {"tenant": {"nested": True}}
        assert any("identity" in p for p in validate_postmortem(bundle))

    def test_served_session_park_stamps_slice_context(self):
        from repro.serve.session import Session

        session = Session("s-id", "t-id", "baseline", 0x5EED)
        session.step(4)
        session.park("test freeze")
        (bundle,) = session.env.machine.obs.flight.postmortems
        identity = bundle["identity"]
        assert identity["tenant"] == "t-id"
        assert identity["session_id"] == "s-id"
        assert identity["scenario"] == "baseline"
        assert identity["seed"] == 0x5EED
        assert identity["steps_applied"] == 4
        assert identity["slices_run"] == session.slices_run
        assert identity["clock"] == session.clock
        assert validate_postmortem(bundle) == []
