"""Chrome-trace export and trace-schema tests (repro.obs.export/schema)."""

from __future__ import annotations

import json

import pytest

from repro.hw.clock import CYCLES_PER_US, Clock
from repro.obs.export import TRACE_PID, chrome_trace, write_chrome_trace
from repro.obs.schema import validate_chrome_trace
from repro.obs.spans import SpanTracer


@pytest.fixture
def tracer() -> SpanTracer:
    clock = Clock()
    tracer = SpanTracer(clock)
    with tracer.span("outer", category="scenario", track="scenario"):
        clock.advance(3 * CYCLES_PER_US)
        with tracer.span("exit", category="exit", track="core0", reason="cpuid"):
            clock.advance(CYCLES_PER_US)
    return tracer


class TestChromeTrace:
    def test_document_shape(self, tracer):
        doc = chrome_trace(tracer.spans)
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["clock"] == "simulated-cycles"
        assert doc["otherData"]["cycles_per_us"] == CYCLES_PER_US

    def test_metadata_announces_process_and_tracks(self, tracer):
        events = chrome_trace(tracer.spans)["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "covirt-sim"
        thread_names = {e["args"]["name"] for e in meta[1:]}
        assert thread_names == {"scenario", "core0"}
        assert all(e["pid"] == TRACE_PID for e in events)

    def test_tids_stable_under_arrival_order(self, tracer):
        events = chrome_trace(tracer.spans)["traceEvents"]
        reversed_events = chrome_trace(list(reversed(tracer.spans)))[
            "traceEvents"
        ]
        tid_of = lambda evs, name: next(
            e["tid"] for e in evs if e.get("ph") == "X" and e["name"] == name
        )
        assert tid_of(events, "outer") == tid_of(reversed_events, "outer")

    def test_timestamps_converted_to_microseconds(self, tracer):
        events = chrome_trace(tracer.spans)["traceEvents"]
        outer = next(e for e in events if e["name"] == "outer")
        inner = next(e for e in events if e["name"] == "exit")
        assert outer["ts"] == 0 and outer["dur"] == 4
        assert inner["ts"] == 3 and inner["dur"] == 1

    def test_span_args_and_cycles_exported(self, tracer):
        events = chrome_trace(tracer.spans)["traceEvents"]
        inner = next(e for e in events if e["name"] == "exit")
        assert inner["args"]["reason"] == "cpuid"
        assert inner["args"]["cycles"] == CYCLES_PER_US
        assert inner["cat"] == "exit"

    def test_open_spans_export_with_zero_duration(self):
        tracer = SpanTracer(Clock())
        tracer.begin("unclosed")
        doc = chrome_trace(tracer.spans)
        assert validate_chrome_trace(doc) == []
        event = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert event["dur"] == 0

    def test_write_round_trips_through_json(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(tracer.spans, str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == count
        assert validate_chrome_trace(doc) == []


class TestChromeTraceValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_or_empty_events(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": []}) != []

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1}]}
        assert any("ph" in p for p in validate_chrome_trace(doc))

    def test_rejects_complete_event_without_timing(self):
        doc = {"traceEvents": [{"ph": "X", "name": "x", "pid": 1}]}
        problems = validate_chrome_trace(doc)
        assert any("ts" in p for p in problems)

    def test_requires_at_least_one_complete_event(self):
        doc = {
            "traceEvents": [
                {"ph": "M", "name": "process_name", "pid": 1, "args": {}}
            ]
        }
        assert any("complete" in p for p in validate_chrome_trace(doc))
