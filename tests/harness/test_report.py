"""Reporting helpers and result serialisation."""

import json

import pytest

from repro.harness.experiments import ExperimentResult
from repro.harness.report import format_rows, overhead_pct


class TestOverheadPct:
    def test_basic(self):
        assert overhead_pct(110.0, 100.0) == pytest.approx(10.0)

    def test_zero_baseline(self):
        assert overhead_pct(5.0, 0.0) == 0.0

    def test_negative(self):
        assert overhead_pct(90.0, 100.0) == pytest.approx(-10.0)


class TestFormatRows:
    def test_alignment(self):
        text = format_rows(["a", "long header"], [["x", 1.0], ["yy", 22.5]])
        lines = text.splitlines()
        assert len({line.index("long") if "long" in line else None
                    for line in lines[:1]}) == 1
        assert lines[1].startswith("-")

    def test_title(self):
        text = format_rows(["a"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formats(self):
        text = format_rows(["v"], [[12345.0], [42.0], [0.1234]])
        assert "12,345" in text
        assert "42.0" in text
        assert "0.123" in text

    def test_empty_rows(self):
        text = format_rows(["col"], [])
        assert "col" in text


class TestExperimentResultSerialisation:
    def make(self):
        return ExperimentResult(
            experiment="Fig. X",
            headers=["config", "value"],
            rows=[["native", 1.0], ["covirt", 1.02]],
            notes="a note",
        )

    def test_to_dict_records(self):
        data = self.make().to_dict()
        assert data["records"][0] == {"config": "native", "value": 1.0}
        assert data["experiment"] == "Fig. X"

    def test_to_json_parses(self):
        parsed = json.loads(self.make().to_json())
        assert len(parsed["records"]) == 2

    def test_save(self, tmp_path):
        path = self.make().save(tmp_path, "figx")
        assert path.name == "figx.json"
        assert json.loads(path.read_text())["notes"] == "a note"

    def test_column(self):
        assert self.make().column("value") == [1.0, 1.02]
