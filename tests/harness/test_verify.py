"""The verification command: every paper claim, banded and checked."""

from repro.cli import main
from repro.harness.verify import CLAIMS, run_verification


class TestVerification:
    def test_all_claims_pass(self):
        report, ok = run_verification()
        assert ok, f"reproduction drifted out of band:\n{report}"

    def test_report_covers_every_figure(self):
        report, _ = run_verification()
        for figure in ("Fig. 3", "Fig. 4", "Fig. 5a", "Fig. 5b",
                       "Fig. 6", "Fig. 7", "Fig. 8"):
            assert figure in report

    def test_claim_bands_are_sane(self):
        for _name, _driver, claims in CLAIMS:
            for claim in claims:
                assert claim.low <= claim.high

    def test_cli_verify_exits_zero(self, capsys):
        assert main(["verify"]) == 0
        assert "ALL CLAIMS REPRODUCED" in capsys.readouterr().out
