"""Negative paths: the guardrails actually guard.

A verification harness that cannot fail is decoration.  These tests
break the system on purpose — a detuned cost model, a disabled flush, a
controller wired twice — and check that the right alarm goes off.
"""

import pytest

from repro.core.commands import CommandType, QueueFull
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.perf.costs import CostModel
from repro.workloads.randomaccess import RandomAccess

GiB = 1 << 30
MiB = 1 << 20
LAYOUT = Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})


class TestDetunedCostModel:
    def test_bloated_ept_cost_breaks_the_fig5_band(self):
        """Crank the nested-walk penalty 20x: RandomAccess overhead must
        leave the paper's 1.0–2.5 % band — i.e. the band has teeth."""
        costs = CostModel(ept_extra_4k=140.0, ept_extra_2m=100.0,
                          ept_extra_1g=80.0)
        env = CovirtEnvironment(costs=costs)
        from repro.harness.env import MICROBENCH_LAYOUT

        native = env.engine.run(
            RandomAccess(), env.launch(MICROBENCH_LAYOUT, None, "n")
        )
        env2 = CovirtEnvironment(costs=costs)
        protected = env2.engine.run(
            RandomAccess(),
            env2.launch(MICROBENCH_LAYOUT, CovirtConfig.memory_only(), "p"),
        )
        overhead = protected.overhead_vs(native) * 100
        assert overhead > 2.5  # out of band, as it must be

    def test_free_exits_hide_trap_costs(self):
        """Zero-cost exits would erase the trap-mode/posted gap the
        ablation depends on."""
        costs = CostModel(vm_exit_round_trip=0, emulation_overhead=0,
                          irq_injection=0, posted_delivery=0)
        from repro.core.features import Feature, IpiMode

        results = {}
        for mode in (IpiMode.POSTED, IpiMode.TRAP):
            env = CovirtEnvironment(costs=costs)
            from repro.harness.env import MICROBENCH_LAYOUT

            enclave = env.launch(
                MICROBENCH_LAYOUT,
                CovirtConfig(features=Feature.MEMORY | Feature.IPI,
                             ipi_mode=mode),
            )
            results[mode] = env.engine.run(RandomAccess(), enclave)
        # With free exits the modes tie — confirming the gap we measure
        # normally is genuinely exit-cost-driven.
        assert results[IpiMode.TRAP].elapsed_cycles == pytest.approx(
            results[IpiMode.POSTED].elapsed_cycles, rel=1e-6
        )


class TestBrokenProtocol:
    def test_skipping_the_flush_leaves_the_documented_hole(self):
        """Remove the MEMORY_UPDATE from the revoke path and the stale
        access goes through — the protocol is load-bearing."""
        env = CovirtEnvironment()
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        ctx = enclave.virt_context
        region = env.mcp.kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        bsp = enclave.assignment.core_ids[0]
        enclave.kernel.touch(bsp, region.start, 8)  # warm the TLB
        # Sabotage: unmap without issuing the command.
        ctx.ept.unmap_region(region)
        enclave.port.read(bsp, region.start, 8)  # the hole, demonstrated
        assert enclave.is_running

    def test_command_queue_overflow_is_loud(self):
        env = CovirtEnvironment()
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        ctx = enclave.virt_context
        queue = next(iter(ctx.queues.values()))
        with pytest.raises(QueueFull):
            for _ in range(1000):  # never serviced: no doorbell
                queue.enqueue(CommandType.PING)


class TestMisuse:
    def test_protecting_after_boot_is_impossible(self):
        """Covirt interposes at boot; there is no API to bolt it onto a
        running native enclave (the paper's design: activation happens
        during enclave initialisation)."""
        env = CovirtEnvironment()
        enclave = env.launch(LAYOUT, None)
        assert enclave.virt_context is None
        from repro.pisces.kmod import PiscesError

        with pytest.raises(PiscesError):
            env.mcp.kmod.boot_enclave(enclave.enclave_id)  # already booted

    def test_double_launch_of_same_spec_gets_fresh_enclaves(self):
        env = CovirtEnvironment()
        a = env.launch(LAYOUT, CovirtConfig.memory_only(), "x")
        b = env.launch(LAYOUT, CovirtConfig.memory_only(), "x")
        assert a.enclave_id != b.enclave_id
        assert env.controller.context_for(a.enclave_id) is not (
            env.controller.context_for(b.enclave_id)
        )

    def test_engine_rejects_foreign_enclave(self):
        """Running a workload on an enclave from another machine is a
        bug; the engine must not silently mix machines."""
        env_a = CovirtEnvironment()
        env_b = CovirtEnvironment()
        enclave_b = env_b.launch(LAYOUT, None)
        # The enclave's core ids resolve to *env_a's* cores — but its
        # regions are owned in env_b. The zone lookup still works, so
        # guard by checking TSC side effects land on env_b, not env_a.
        before_a = env_a.machine.core(1).read_tsc()
        env_b.engine.run(RandomAccess(), enclave_b)
        after_a = env_a.machine.core(1).read_tsc()
        assert before_a == after_a  # env_a untouched
