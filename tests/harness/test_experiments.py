"""The paper's evaluation *shape*, asserted.

Each test pins the qualitative claim of a table/figure: who wins, by
roughly what factor, where the sensitivity lies.  Absolute numbers are
the cost model's business; these bands are what reproduction means.
"""

import re

import pytest

from repro.harness import experiments as ex


def pct(cell: str) -> float:
    match = re.match(r"([+-]\d+(\.\d+)?)%", cell)
    assert match, f"not a percentage: {cell!r}"
    return float(match.group(1))


class TestTable1:
    def test_all_six_benchmarks_present(self):
        result = ex.run_table1()
        names = result.column("Benchmark Name")
        assert names == [
            "Selfish Detour",
            "STREAM",
            "RandomAccess_OMP",
            "HPCG",
            "MiniFE",
            "LAMMPS-lj",
        ]

    def test_paper_parameters(self):
        result = ex.run_table1()
        params = dict(zip(result.column("Benchmark Name"), result.column("Parameters")))
        assert params["RandomAccess_OMP"] == "25"
        assert params["HPCG"] == "104 104 104 330"
        assert params["MiniFE"] == "nx 250 ny 250 nz 250"

    def test_renders(self):
        assert "Benchmark Name" in ex.run_table1().render()


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.run_fig3_selfish(duration_seconds=5.0)

    def test_four_configs(self, result):
        assert result.column("config") == [
            "native",
            "covirt-none",
            "covirt-mem",
            "covirt-mem+ipi",
        ]

    def test_detour_counts_identical(self, result):
        """Virtualization adds no noise *events* — the paper's headline
        Fig. 3 observation."""
        counts = result.column("detours")
        assert len(set(counts)) == 1

    def test_noise_fraction_tiny_everywhere(self, result):
        for cell in result.column("noise fraction"):
            assert float(cell.rstrip("%")) < 0.01

    def test_max_detour_bounded_by_exit_cost(self, result):
        durations = result.column("max detour (us)")
        assert max(durations) - min(durations) < 2.0  # microseconds


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.run_fig4_xemem(sizes_mb=[1, 16, 256, 1024])

    def test_latency_grows_with_size(self, result):
        lat = result.column("no covirt (us)")
        assert lat == sorted(lat)

    def test_covirt_overhead_negligible(self, result):
        """'Covirt imposes little to no overhead for this range.'"""
        for cell in result.column("delta"):
            assert pct(cell) < 5.0

    def test_overhead_shrinks_with_size(self, result):
        deltas = [pct(c) for c in result.column("delta")]
        assert deltas[-1] < deltas[0]
        assert deltas[-1] < 1.0


class TestFig5:
    @pytest.fixture(scope="class")
    def stream(self):
        return ex.run_fig5_stream()

    @pytest.fixture(scope="class")
    def randomaccess(self):
        return ex.run_fig5_randomaccess()

    def test_stream_no_noticeable_overhead(self, stream):
        for cell in stream.column("overhead"):
            assert pct(cell) < 0.5

    def test_randomaccess_bands_match_paper(self, randomaccess):
        overheads = dict(
            zip(randomaccess.column("config"), randomaccess.column("overhead"))
        )
        # Paper: 1.8 % with memory protection, 3.1 % worst case.
        assert 1.0 < pct(overheads["covirt-mem"]) < 2.5
        assert 2.5 < pct(overheads["covirt-mem+ipi"]) < 4.0
        assert pct(overheads["covirt-none"]) < 0.5

    def test_randomaccess_worst_case_is_mem_ipi(self, randomaccess):
        overheads = [pct(c) for c in randomaccess.column("overhead")]
        assert max(overheads) == overheads[-1]


class TestFig6And7:
    @pytest.fixture(scope="class")
    def minife(self):
        return ex.run_fig6_minife()

    @pytest.fixture(scope="class")
    def hpcg(self):
        return ex.run_fig7_hpcg()

    def test_all_layouts_swept(self, minife):
        assert set(minife.column("layout")) == {"1c/1n", "4c/2n", "4c/1n", "8c/2n"}

    def test_minife_no_noticeable_overhead(self, minife):
        for cell in minife.column("overhead"):
            assert pct(cell) < 0.75

    def test_hpcg_worst_case_band(self, hpcg):
        overheads = [pct(c) for c in hpcg.column("overhead")]
        assert max(overheads) < 2.0  # paper: 1.4 % worst case
        assert max(overheads) > 0.8

    def test_hpcg_penalty_consistent_across_configs(self, hpcg):
        """Paper: a baseline penalty that stays roughly constant
        regardless of feature configuration."""
        rows = list(zip(hpcg.column("layout"), hpcg.column("config"),
                        [pct(c) for c in hpcg.column("overhead")]))
        for layout in {"1c/1n", "4c/2n", "4c/1n", "8c/2n"}:
            covirt = [o for l, c, o in rows if l == layout and c != "native"]
            assert max(covirt) - min(covirt) < 1.2

    def test_scaling_improves_fom(self, hpcg):
        rows = dict(
            ((l, c), f)
            for l, c, f in zip(
                hpcg.column("layout"), hpcg.column("config"), hpcg.column("GFLOP/s")
            )
        )
        assert rows[("8c/2n", "native")] > rows[("4c/2n", "native")] > rows[
            ("1c/1n", "native")
        ]

    def test_numa_split_beats_packed(self, hpcg):
        rows = dict(
            ((l, c), f)
            for l, c, f in zip(
                hpcg.column("layout"), hpcg.column("config"), hpcg.column("GFLOP/s")
            )
        )
        assert rows[("4c/2n", "native")] > rows[("4c/1n", "native")]


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.run_fig8_lammps()

    def test_all_problems_swept(self, result):
        assert set(result.column("problem")) == {"lj", "eam", "chain", "chute"}

    def test_lj_eam_chain_similar_across_configs(self, result):
        rows = list(zip(result.column("problem"), result.column("overhead")))
        for problem in ("lj", "eam", "chain"):
            overheads = [pct(o) for p, o in rows if p == problem]
            assert max(overheads) < 2.0

    def test_chute_most_sensitive(self, result):
        rows = list(zip(result.column("problem"), result.column("overhead")))
        worst = {
            p: max(pct(o) for q, o in rows if q == p)
            for p in ("lj", "eam", "chain", "chute")
        }
        assert worst["chute"] > max(worst["lj"], worst["eam"], worst["chain"])
        assert worst["chute"] < 8.0  # still "minimal overheads"

    def test_native_and_none_best_for_chute(self, result):
        rows = list(
            zip(result.column("problem"), result.column("config"),
                result.column("loop time (s)"))
        )
        chute = {c: t for p, c, t in rows if p == "chute"}
        assert chute["native"] <= chute["covirt-mem"]
        assert chute["covirt-none"] <= chute["covirt-mem"]
        assert chute["covirt-mem"] <= chute["covirt-mem+ipi"]
