"""The execution engine: overheads derive mechanistically from config."""

import pytest

from repro.core.features import CovirtConfig, Feature, IpiMode
from repro.harness.env import CovirtEnvironment, Layout, MICROBENCH_LAYOUT
from repro.workloads.base import Phase, Workload
from repro.workloads.randomaccess import RandomAccess
from repro.workloads.stream import Stream
from repro.hw.tlb import AccessPattern

GiB = 1 << 30


@pytest.fixture
def env():
    return CovirtEnvironment()


def run_config(env, workload, config, layout=MICROBENCH_LAYOUT):
    enclave = env.launch(layout, config)
    result = env.engine.run(workload, enclave)
    env.teardown(enclave)
    return result


class TestEngineBasics:
    def test_result_fields(self, env):
        result = run_config(env, Stream(), None)
        assert result.workload == "STREAM"
        assert result.config_label == "native"
        assert result.layout_label == "1c/1n"
        assert result.elapsed_cycles > 0
        assert result.fom > 0
        assert set(result.breakdown) >= {"compute", "ept", "ipi", "timer"}

    def test_time_passes_on_enclave_cores(self, env):
        enclave = env.launch(MICROBENCH_LAYOUT, None)
        bsp = enclave.assignment.core_ids[0]
        before = env.machine.core(bsp).read_tsc()
        result = env.engine.run(Stream(), enclave)
        assert env.machine.core(bsp).read_tsc() >= before + result.elapsed_cycles

    def test_native_has_no_virtualization_costs(self, env):
        result = run_config(env, RandomAccess(), None)
        assert result.breakdown["ept"] == 0.0
        assert result.breakdown["baseline"] == 0.0

    def test_covirt_none_has_no_ept_cost(self, env):
        result = run_config(env, RandomAccess(), CovirtConfig.none())
        assert result.breakdown["ept"] == 0.0

    def test_memory_feature_adds_ept_cost(self, env):
        result = run_config(env, RandomAccess(), CovirtConfig.memory_only())
        assert result.breakdown["ept"] > 0.0

    def test_requires_running_enclave(self, env):
        enclave = env.launch(MICROBENCH_LAYOUT, None)
        env.mcp.shutdown_enclave(enclave.enclave_id)
        with pytest.raises(Exception):
            env.engine.run(Stream(), enclave)


class TestMechanisticOverheads:
    def test_overhead_ordering_none_le_mem_le_memipi(self, env):
        native = run_config(env, RandomAccess(), None)
        none = run_config(env, RandomAccess(), CovirtConfig.none())
        mem = run_config(env, RandomAccess(), CovirtConfig.memory_only())
        both = run_config(env, RandomAccess(), CovirtConfig.memory_ipi())
        assert (
            native.elapsed_cycles
            <= none.elapsed_cycles
            <= mem.elapsed_cycles
            <= both.elapsed_cycles
        )

    def test_stream_insensitive_randomaccess_sensitive(self, env):
        def overhead(workload):
            native = run_config(env, workload, None)
            mem = run_config(env, workload, CovirtConfig.memory_only())
            return mem.overhead_vs(native)

        assert overhead(RandomAccess()) > 3 * overhead(Stream())

    def test_trap_mode_costs_more_than_posted(self, env):
        posted = run_config(
            env,
            RandomAccess(),
            CovirtConfig(features=Feature.MEMORY | Feature.IPI),
        )
        trap = run_config(
            env,
            RandomAccess(),
            CovirtConfig(
                features=Feature.MEMORY | Feature.IPI, ipi_mode=IpiMode.TRAP
            ),
        )
        assert trap.elapsed_cycles > posted.elapsed_cycles

    @pytest.mark.slow  # builds a full 4K-only EPT: ~20s on its own
    def test_ept_coalescing_reduces_overhead(self, env):
        coalesced = run_config(env, RandomAccess(), CovirtConfig.memory_only())
        flat = run_config(
            env,
            RandomAccess(),
            CovirtConfig(
                features=Feature.MEMORY | Feature.EXCEPTIONS,
                ept_coalescing=False,
            ),
        )
        assert flat.breakdown["ept"] > coalesced.breakdown["ept"]


class TestLayoutEffects:
    def test_more_cores_faster(self, env):
        one = run_config(
            env, Stream(), None, Layout("1c/1n", {0: 1}, {0: 7 * GiB, 1: 7 * GiB})
        )
        four = run_config(
            env, Stream(), None,
            Layout("4c/2n", {0: 2, 1: 2}, {0: 7 * GiB, 1: 7 * GiB}),
        )
        assert four.elapsed_cycles < one.elapsed_cycles

    def test_split_zones_beat_packed_for_bandwidth(self, env):
        """4c/2n gets two sockets' bandwidth; 4c/1n contends on one."""
        split = run_config(
            env, Stream(), None,
            Layout("4c/2n", {0: 2, 1: 2}, {0: 7 * GiB, 1: 7 * GiB}),
        )
        packed = run_config(
            env, Stream(), None,
            Layout("4c/1n", {0: 4}, {0: 7 * GiB, 1: 7 * GiB}),
        )
        assert split.elapsed_cycles < packed.elapsed_cycles

    def test_local_memory_beats_remote(self, env):
        local = run_config(
            env, RandomAccess(), None, Layout("1c/local", {0: 1}, {0: 14 * GiB})
        )
        remote = run_config(
            env, RandomAccess(), None, Layout("1c/remote", {0: 1}, {1: 14 * GiB})
        )
        assert local.elapsed_cycles < remote.elapsed_cycles


class TestPlausibility:
    """Sanity pins: simulated wall-clock must stay in believable ranges
    for the paper's parameters, so future cost-model edits can't drift
    into nonsense without a test noticing."""

    def test_randomaccess_runs_tens_of_seconds(self, env):
        result = run_config(env, RandomAccess(), None)
        assert 5.0 < result.elapsed_seconds < 120.0

    def test_stream_single_core_bandwidth_plausible(self, env):
        result = run_config(env, Stream(), None)
        # A 1.7 GHz Broadwell core sustains a few GB/s on triad.
        assert 2_000 < result.fom < 20_000  # MB/s

    def test_hpcg_gflops_plausible(self, env):
        from repro.workloads.hpcg import Hpcg

        result = run_config(env, Hpcg(), None)
        assert 0.3 < result.fom < 5.0  # GFLOP/s on one low-clocked core

    def test_breakdown_sums_to_elapsed(self, env):
        result = run_config(env, RandomAccess(), CovirtConfig.memory_ipi())
        assert sum(result.breakdown.values()) == pytest.approx(
            result.elapsed_cycles, rel=1e-6
        )

    def test_lammps_loop_times_minutes_at_most(self, env):
        from repro.workloads.lammps import LAMMPS_PROBLEMS, Lammps

        for problem in LAMMPS_PROBLEMS:
            result = run_config(env, Lammps(problem), None)
            assert 1.0 < result.fom < 600.0


class TestPhaseValidation:
    def test_phase_rejects_negative(self):
        with pytest.raises(ValueError):
            Phase("x", -1, 0, 0, AccessPattern.SEQUENTIAL)
        with pytest.raises(ValueError):
            Phase("x", 1, 1, 1, AccessPattern.SEQUENTIAL, mem_bound_frac=2.0)

    def test_efficiency_decreases_with_cores(self):
        workload = Stream()
        assert workload.efficiency_at(1) == 1.0
        assert workload.efficiency_at(8) < workload.efficiency_at(4) <= 1.0
