"""Cross-validation: the functional TLB vs the analytic miss model.

The benchmarks use `estimate_miss_rate` because workload phases are too
big to simulate access-by-access.  This test closes the loop: drive
thousands of *real* accesses through a protected enclave's port (real
TLB, real EPT walks) and check the measured miss rate against what the
analytic model predicts for the same footprint and pattern.
"""

import pytest

from repro.core.features import CovirtConfig, Feature
from repro.fuzz.rng import named_stream
from repro.harness.env import CovirtEnvironment, Layout
from repro.hw.memory import PAGE_SIZE
from repro.hw.tlb import AccessPattern, TlbStats, estimate_miss_rate

MiB = 1 << 20


@pytest.fixture
def enclave_4k():
    """A protected enclave whose EPT (and therefore TLB entries) are
    4 KiB-granular, matching the analytic model's page size."""
    env = CovirtEnvironment()
    config = CovirtConfig(
        features=Feature.MEMORY | Feature.EXCEPTIONS, ept_coalescing=False
    )
    enclave = env.launch(Layout("1c", {0: 1}, {0: 64 * MiB}), config)
    return env, enclave


def drive(env, enclave, footprint_bytes: int, accesses: int, pattern: str):
    bsp = enclave.assignment.core_ids[0]
    core = env.machine.core(bsp)
    base = enclave.assignment.regions[0].start
    rng = named_stream("model-validation", 7)
    print(f"drive rng: {rng.describe()}")
    pages = footprint_bytes // PAGE_SIZE
    # Warm-up pass so compulsory misses don't skew the steady state.
    for page in range(pages):
        enclave.port.read(bsp, base + page * PAGE_SIZE, 1)
    core.tlb.stats = TlbStats()
    for _ in range(accesses):
        if pattern == "random":
            page = rng.randrange(pages)
        else:  # sequential sweep with wraparound
            page = drive.cursor = (getattr(drive, "cursor", 0) + 1) % pages
        enclave.port.read(bsp, base + page * PAGE_SIZE, 1)
    return core.tlb.stats.miss_rate


class TestModelValidation:
    def test_random_beyond_reach_matches_model(self, enclave_4k):
        env, enclave = enclave_4k
        footprint = 32 * MiB  # >> 6 MiB TLB reach
        measured = drive(env, enclave, footprint, accesses=4000, pattern="random")
        predicted = estimate_miss_rate(footprint, AccessPattern.RANDOM)
        assert measured == pytest.approx(predicted, abs=0.08)

    def test_random_within_reach_matches_model(self, enclave_4k):
        env, enclave = enclave_4k
        footprint = 2 * MiB  # well under TLB reach
        measured = drive(env, enclave, footprint, accesses=3000, pattern="random")
        assert measured < 0.02
        assert estimate_miss_rate(footprint, AccessPattern.RANDOM) < 0.02

    def test_miss_rate_monotone_in_footprint_functionally(self, enclave_4k):
        env, enclave = enclave_4k
        rates = [
            drive(env, enclave, fp, accesses=2500, pattern="random")
            for fp in (4 * MiB, 16 * MiB, 48 * MiB)
        ]
        assert rates[0] < rates[1] < rates[2]

    def test_ept_walk_costs_show_up_in_tsc(self, enclave_4k):
        """Misses must cost simulated time: the TSC advances more per
        access when the footprint exceeds TLB reach."""
        env, enclave = enclave_4k
        bsp = enclave.assignment.core_ids[0]
        core = env.machine.core(bsp)

        def cycles_per_access(footprint):
            start = core.read_tsc()
            drive(env, enclave, footprint, accesses=1500, pattern="random")
            return core.read_tsc() - start

        cheap = cycles_per_access(2 * MiB)
        expensive = cycles_per_access(48 * MiB)
        assert expensive > cheap * 1.5
