"""Co-running enclaves: interference is bounded to the memory system."""

import pytest

from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.workloads.selfish import SelfishDetour
from repro.workloads.stream import Stream

GiB = 1 << 30


@pytest.fixture
def env():
    return CovirtEnvironment()


def zone_layout(zone: int, cores: int = 2, mem: int = 2 * GiB) -> Layout:
    return Layout(f"{cores}c/z{zone}", {zone: cores}, {zone: mem})


class TestConcurrentExecution:
    def test_same_zone_streams_contend(self, env):
        a = env.launch(zone_layout(0), None, "a")
        b = env.launch(zone_layout(0), None, "b")
        solo_env = CovirtEnvironment()
        solo = solo_env.engine.run(
            Stream(), solo_env.launch(zone_layout(0), None, "solo")
        )
        together = env.engine.run_concurrent([(Stream(), a), (Stream(), b)])
        for result in together:
            assert result.elapsed_cycles > solo.elapsed_cycles

    def test_different_zones_fully_isolated(self, env):
        a = env.launch(zone_layout(0), None, "a")
        b = env.launch(zone_layout(1), None, "b")
        solo_env = CovirtEnvironment()
        solo = solo_env.engine.run(
            Stream(), solo_env.launch(zone_layout(0), None, "solo")
        )
        together = env.engine.run_concurrent([(Stream(), a), (Stream(), b)])
        for result in together:
            assert result.elapsed_cycles == solo.elapsed_cycles

    def test_compute_bound_neighbour_is_harmless(self, env):
        """A spin-loop co-runner exerts no memory pressure: the STREAM
        enclave runs at solo speed — hardware partitioning at work."""
        a = env.launch(zone_layout(0), None, "a")
        b = env.launch(zone_layout(0), None, "b")
        solo_env = CovirtEnvironment()
        solo = solo_env.engine.run(
            Stream(), solo_env.launch(zone_layout(0), None, "solo")
        )
        together = env.engine.run_concurrent(
            [(Stream(), a), (SelfishDetour(1.0), b)]
        )
        stream_result = together[0]
        assert stream_result.elapsed_cycles <= solo.elapsed_cycles * 1.01

    def test_covirt_changes_nothing_about_isolation(self, env):
        """Protection features don't alter cross-enclave interference."""
        a = env.launch(zone_layout(0), CovirtConfig.memory_ipi(), "a")
        b = env.launch(zone_layout(0), CovirtConfig.memory_ipi(), "b")
        native_env = CovirtEnvironment()
        na = native_env.launch(zone_layout(0), None, "na")
        nb = native_env.launch(zone_layout(0), None, "nb")
        protected = env.engine.run_concurrent([(Stream(), a), (Stream(), b)])
        native = native_env.engine.run_concurrent(
            [(Stream(), na), (Stream(), nb)]
        )
        for p, n in zip(protected, native):
            assert abs(p.elapsed_cycles / n.elapsed_cycles - 1.0) < 0.01

    def test_dead_enclave_rejected(self, env):
        a = env.launch(zone_layout(0), None, "a")
        env.mcp.shutdown_enclave(a.enclave_id)
        with pytest.raises(Exception):
            env.engine.run_concurrent([(Stream(), a)])
