"""The workloads are real codes: each reference kernel computes a
checkable numerical result."""

import numpy as np
import pytest

from repro.fuzz.rng import named_stream
from repro.workloads.hpcg import Hpcg
from repro.workloads.lammps import LAMMPS_PROBLEMS, Lammps
from repro.workloads.minife import MiniFE
from repro.workloads.randomaccess import RandomAccess, hpcc_random_stream
from repro.workloads.selfish import SelfishDetour
from repro.workloads.stream import Stream


@pytest.fixture
def rng():
    stream = named_stream("reference-kernels", 42)
    print(f"kernel rng: {stream.describe()}")
    return stream.numpy_generator()


class TestStream:
    def test_triad_chain_exact(self, rng):
        result = Stream().reference_kernel(rng)
        assert result["triad_max_error"] < 1e-12

    def test_deterministic_given_seed(self):
        r1 = Stream().reference_kernel(named_stream("rk", 7).numpy_generator())
        r2 = Stream().reference_kernel(named_stream("rk", 7).numpy_generator())
        assert r1["checksum"] == r2["checksum"]

    def test_bare_call_uses_default_named_stream(self):
        # With no rng the kernel draws from the named stream
        # ``workloads.<name>`` under the repo default seed — so a bare
        # call is still reproducible.
        r1 = Stream().reference_kernel()
        r2 = Stream().reference_kernel()
        assert r1["checksum"] == r2["checksum"]
        expected = Stream().reference_kernel(
            named_stream("workloads.STREAM").numpy_generator()
        )
        assert r1["checksum"] == expected["checksum"]


class TestRandomAccess:
    def test_gups_self_check_passes(self, rng):
        result = RandomAccess().reference_kernel(rng)
        assert result["passed"]
        assert result["errors"] == 0  # single-threaded: XOR fully undoes

    def test_hpcc_stream_is_nontrivial(self):
        stream = hpcc_random_stream(1000)
        assert len(np.unique(stream)) > 990  # essentially no repeats

    def test_hpcc_stream_deterministic(self):
        assert np.array_equal(hpcc_random_stream(100), hpcc_random_stream(100))


class TestHpcg:
    def test_cg_converges(self, rng):
        result = Hpcg().reference_kernel(rng)
        assert result["converged"]
        assert result["iterations"] < 300

    def test_residual_tiny(self, rng):
        assert Hpcg().reference_kernel(rng)["relative_residual"] < 1e-7


class TestMiniFE:
    def test_assembled_operator_spd(self, rng):
        result = MiniFE().reference_kernel(rng)
        assert result["spd_check"]

    def test_cg_converges(self, rng):
        result = MiniFE().reference_kernel(rng)
        assert result["converged"]


class TestLammps:
    @pytest.mark.parametrize("problem", ["lj", "eam", "chain"])
    def test_conservative_systems_conserve_energy(self, problem, rng):
        result = Lammps(problem).reference_kernel(rng)
        assert result["conserved"], (
            f"{problem} drifted {result['relative_drift']:.3%}"
        )

    def test_chute_runs_bounded(self, rng):
        result = Lammps("chute").reference_kernel(rng)
        assert np.isfinite(result["energy_last"])

    def test_unknown_problem_rejected(self):
        with pytest.raises(ValueError):
            Lammps("nope")

    def test_problem_catalogue(self):
        assert set(LAMMPS_PROBLEMS) == {"lj", "eam", "chain", "chute"}


class TestSelfishDetour:
    def test_recovers_planted_noise(self, rng):
        result = SelfishDetour().reference_kernel(rng)
        assert result["detours"] == result["expected_events"]
