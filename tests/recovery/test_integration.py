"""Recovery under co-location: a crash-looping neighbor must be
invisible to a co-running enclave, and dependents must be re-wired."""

from __future__ import annotations

from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.harness.env import Layout
from repro.recovery.policy import RestartWithBackoff
from repro.recovery.supervisor import RecoveryPhase
from repro.xemem.segment import HOST_ENCLAVE_ID

GiB = 1 << 30
MiB = 1 << 20


def crash(enclave) -> None:
    bsp = enclave.assignment.core_ids[0]
    try:
        enclave.port.read(bsp, 50 * GiB, 8)
    except EnclaveFaultError:
        pass


class TestCoRunningIsolation:
    def test_neighbor_sees_zero_faults_through_crash_loop(
        self, env, small_layout
    ):
        """The acceptance scenario: one enclave crash-loops and recovers
        repeatedly; its co-running neighbor computes undisturbed."""
        neighbor = env.launch(small_layout, CovirtConfig.full(), name="neighbor")
        victim = env.launch_supervised(
            small_layout, CovirtConfig.full(),
            RestartWithBackoff(base_delay_cycles=10_000, jitter_fraction=0.0),
            name="victim",
        )
        ncore = neighbor.assignment.core_ids[0]
        scratch = neighbor.kernel.kmalloc(MiB)

        for round_no in range(4):
            # Neighbor does real work before, during, and after each crash.
            neighbor.kernel.touch(ncore, scratch.start, 4096, write=True)
            crash(victim.enclave)
            assert victim.phase is RecoveryPhase.RUNNING
            neighbor.kernel.touch(ncore, scratch.start, 4096)

        assert victim.incarnation == 5
        # Zero faults observed by the neighbor: still running, never
        # terminated, no dossier, no fault record.
        assert neighbor.is_running
        assert neighbor.fault is None
        assert neighbor.enclave_id not in env.controller.dossiers
        nctx = env.controller.context_for(neighbor.enclave_id)
        assert all(not hv.terminated for hv in nctx.hypervisors.values())
        # And the node is intact.
        assert env.host.alive
        assert env.host.verify_integrity()

    def test_host_resource_accounting_balances_after_crash_loop(
        self, env, small_layout
    ):
        victim = env.launch_supervised(
            small_layout, CovirtConfig.full(),
            RestartWithBackoff(base_delay_cycles=1_000), name="victim",
        )
        for _ in range(3):
            crash(victim.enclave)
        # Exactly one incarnation's worth of resources is checked out.
        from repro.pisces.resources import enclave_owner

        live = env.machine.memory.total_owned(enclave_owner(victim.enclave_id))
        assert live == 2 * GiB
        for dead_id in victim.past_enclave_ids:
            assert env.machine.memory.total_owned(enclave_owner(dead_id)) == 0


class TestDependentRewiring:
    def test_dependents_renotified_after_recovery(self, env, small_layout):
        """A dependent that was told 'your provider died' must then be
        told 'your provider is back (as enclave N)'."""
        provider = env.launch_supervised(
            small_layout, CovirtConfig.full(),
            RestartWithBackoff(base_delay_cycles=1_000), name="provider",
        )
        consumer = env.launch(small_layout, CovirtConfig.full(), name="consumer")
        task = provider.enclave.kernel.spawn("exporter", mem_bytes=MiB)
        seg = env.mcp.xemem.make(
            provider.enclave_id, "feed", task.slices[0].start, MiB
        )
        env.mcp.xemem.attach(consumer.enclave_id, seg.segid)
        env.recovery.checkpoint_now("provider")
        old_id = provider.enclave_id

        crash(provider.enclave)
        assert provider.phase is RecoveryPhase.RUNNING

        # Failure notification went out...
        revoked = [
            n for n in env.mcp.notifications
            if n.enclave_id == consumer.enclave_id and "revoked" in n.what
        ]
        assert revoked
        # ...and so did the recovery notification, naming the successor.
        recovered = [
            n for n in env.mcp.notifications
            if n.enclave_id == consumer.enclave_id
            and n.about_enclave_id == old_id
            and "recovered as enclave" in n.what
        ]
        assert len(recovered) == 1
        assert str(provider.enclave_id) in recovered[0].what
        # The consumer's attachment to the re-exported segment works.
        restored = env.mcp.xemem.names.lookup("feed")
        assert consumer.enclave_id in restored.attachments

    def test_host_attachment_restored(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(),
            RestartWithBackoff(base_delay_cycles=1_000), name="svc",
        )
        task = svc.enclave.kernel.spawn("exporter", mem_bytes=MiB)
        seg = env.mcp.xemem.make(svc.enclave_id, "hbuf", task.slices[0].start, MiB)
        env.mcp.xemem.attach(HOST_ENCLAVE_ID, seg.segid)
        env.recovery.checkpoint_now("svc")
        crash(svc.enclave)
        restored = env.mcp.xemem.names.lookup("hbuf")
        assert restored.owner_enclave_id == svc.enclave_id
        assert HOST_ENCLAVE_ID in restored.attachments


class TestChannelRewiring:
    def test_recovered_enclave_gets_fresh_channel(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(),
            RestartWithBackoff(base_delay_cycles=1_000), name="svc",
        )
        old_id = svc.enclave_id
        crash(svc.enclave)
        assert old_id not in env.mcp.channels
        assert svc.enclave_id in env.mcp.channels
        assert svc.enclave.kernel.hobbes_client is not None
