"""The recovery state machine, policies in vivo, and MTTR metrics."""

from __future__ import annotations

import pytest

from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.pisces.enclave import EnclaveState
from repro.recovery.policy import (
    Quarantine,
    RestartAlways,
    RestartWithBackoff,
)
from repro.recovery.supervisor import RecoveryPhase
from repro.perf.trace import TraceKind

GiB = 1 << 30


def crash(enclave) -> None:
    bsp = enclave.assignment.core_ids[0]
    try:
        enclave.port.read(bsp, 50 * GiB, 8)
    except EnclaveFaultError:
        pass


class TestStateMachine:
    def test_recovered_service_tracks_new_incarnation(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        old_id = svc.enclave_id
        crash(svc.enclave)
        assert svc.phase is RecoveryPhase.RUNNING
        assert svc.incarnation == 2
        assert svc.enclave_id != old_id
        assert svc.past_enclave_ids == [old_id]
        assert svc.enclave.is_running
        assert svc.enclave.incarnation == 2

    def test_old_enclave_marked_recovered_with_successor(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        old_id = svc.enclave_id
        crash(svc.enclave)
        old = env.mcp.kmod.enclaves[old_id]
        assert old.state is EnclaveState.RECOVERED
        assert old.successor_id == svc.enclave_id

    def test_crash_loop_keeps_recovering(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(),
            RestartWithBackoff(base_delay_cycles=1_000, max_retries=10),
            name="svc",
        )
        for expected in range(2, 6):
            crash(svc.enclave)
            assert svc.phase is RecoveryPhase.RUNNING
            assert svc.incarnation == expected
        assert len(svc.history) == 4

    def test_fault_history_accumulates_across_incarnations(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        crash(svc.enclave)
        crash(svc.enclave)
        assert [k.kind for k in svc.history] == ["ept_violation"] * 2
        # Keys recorded against the incarnation that faulted.
        assert svc.history[0].enclave_id != svc.history[1].enclave_id
        assert svc.history[0].signature == svc.history[1].signature

    def test_trace_records_recovery_timeline(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        crash(svc.enclave)
        records = env.recovery.trace.tail(env.recovery.trace.capacity)
        kinds = [r.kind for r in records]
        assert TraceKind.RECOVER in kinds
        assert TraceKind.CHECKPOINT in kinds
        details = " ".join(r.detail for r in records)
        assert "recovered as enclave" in details


class TestGiveUp:
    def test_backoff_gives_up_at_threshold(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(),
            RestartWithBackoff(base_delay_cycles=100, max_retries=2),
            name="svc",
        )
        crash(svc.enclave)
        assert svc.phase is RecoveryPhase.RUNNING
        crash(svc.enclave)
        assert svc.phase is RecoveryPhase.RUNNING
        crash(svc.enclave)  # third fault exceeds max_retries=2
        assert svc.phase is RecoveryPhase.GIVEN_UP
        assert not svc.enclave.is_running
        outcomes = [r.outcome for r in env.recovery.metrics.records]
        assert outcomes == ["recovered", "recovered", "gave-up"]


class TestQuarantineInVivo:
    def test_repeated_signature_parks_service(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(),
            Quarantine(inner=RestartAlways(), max_repeats=2),
            name="svc",
        )
        crash(svc.enclave)
        assert svc.phase is RecoveryPhase.RUNNING
        crash(svc.enclave)  # same signature, second strike
        assert svc.phase is RecoveryPhase.QUARANTINED
        assert not svc.enclave.is_running
        # The dossier of the quarantined incarnation is retained for
        # diagnosis — that's the point of stopping the restart loop.
        assert svc.enclave_id in env.controller.dossiers
        rec = env.recovery.metrics.records[-1]
        assert rec.outcome == "quarantined"

    def test_host_unharmed_after_quarantine(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(),
            Quarantine(inner=RestartAlways(), max_repeats=1),
            name="svc",
        )
        crash(svc.enclave)
        assert svc.phase is RecoveryPhase.QUARANTINED
        assert env.host.alive
        assert env.host.verify_integrity()


class TestMetrics:
    def test_mttr_is_nonzero_and_spans_detection_to_running(
        self, env, small_layout
    ):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(),
            RestartWithBackoff(base_delay_cycles=5_000, jitter_fraction=0.0),
            name="svc",
        )
        crash(svc.enclave)
        rec = env.recovery.metrics.records[-1]
        assert rec.outcome == "recovered"
        assert rec.mttr_cycles > 5_000  # at least the backoff delay
        assert rec.backoff_cycles == 5_000
        assert rec.scrub_cycles > 0
        summary = env.recovery.metrics.by_fault_kind()["ept_violation"]
        assert summary.recovered == 1
        assert summary.mean_mttr_us > 0

    def test_counters_fold_into_perf_counters(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        crash(svc.enclave)
        counters = env.recovery.metrics.counters
        assert counters.recoveries == 1
        assert counters.recovery_cycles > 0
        assert counters.checkpoints_taken >= 2  # baseline + post-recovery
        merged = counters.merge(counters)
        assert merged.recoveries == 2

    def test_render_mentions_fault_kind(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        crash(svc.enclave)
        out = env.recovery.metrics.render()
        assert "ept_violation" in out
        assert "MTTR" in out


class TestManualRecovery:
    def test_auto_off_leaves_service_terminated(self, env, small_layout):
        env.recovery.auto = False
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        crash(svc.enclave)
        assert svc.phase is RecoveryPhase.TERMINATED
        assert svc.pending_key is not None
        env.recovery.recover("svc")
        assert svc.phase is RecoveryPhase.RUNNING
        assert svc.incarnation == 2

    def test_recover_running_service_rejected(self, env, small_layout):
        env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        with pytest.raises(ValueError, match="running"):
            env.recovery.recover("svc")
