"""Checkpoint capture, incrementality, and the restore round trip."""

from __future__ import annotations

from repro.core.commands import CommandType
from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.recovery.policy import RestartAlways
from repro.recovery.supervisor import RecoveryPhase
from repro.xemem.segment import HOST_ENCLAVE_ID

GiB = 1 << 30
MiB = 1 << 20


def crash(enclave) -> None:
    bsp = enclave.assignment.core_ids[0]
    try:
        enclave.port.read(bsp, 50 * GiB, 8)
    except EnclaveFaultError:
        pass


class TestIncrementalCheckpoint:
    def test_baseline_then_clean_checkpoint(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="cp"
        )
        baseline = env.recovery.checkpoints.latest[svc.enclave_id]
        assert set(baseline.dirty_sections) == {
            "resources", "tasks", "segments", "grants", "commands",
        }
        # Nothing changed: the next checkpoint copies no sections and
        # costs only the base fingerprint scan.
        second = env.recovery.checkpoint_now("cp")
        assert second.dirty_sections == ()
        assert second.cost_cycles == env.costs.checkpoint_base
        assert second.generation == baseline.generation + 1

    def test_dirty_sections_tracked_per_change(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="cp"
        )
        svc.enclave.kernel.spawn("worker", mem_bytes=MiB)
        cp = env.recovery.checkpoint_now("cp")
        assert "tasks" in cp.dirty_sections
        assert "grants" not in cp.dirty_sections
        seg_task = svc.enclave.kernel.spawn("exporter", mem_bytes=MiB)
        env.mcp.xemem.make(
            svc.enclave_id, "buf", seg_task.slices[0].start, MiB
        )
        cp2 = env.recovery.checkpoint_now("cp")
        assert "segments" in cp2.dirty_sections
        assert "resources" not in cp2.dirty_sections

    def test_checkpoint_cost_charged_to_sim_clock(self, env, small_layout):
        env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="cp"
        )
        before = env.machine.clock.now
        cp = env.recovery.checkpoint_now("cp")
        assert env.machine.clock.now == before + cp.cost_cycles
        assert cp.cost_cycles > 0

    def test_periodic_tick(self, env, small_layout):
        env.recovery.checkpoints.interval_cycles = 1_000
        env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="cp"
        )
        assert env.recovery.tick() == []  # baseline just taken, not due
        env.machine.clock.advance(2_000)
        taken = env.recovery.tick()
        assert len(taken) == 1

    def test_pending_commands_captured(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="cp"
        )
        ctx = env.controller.context_for(svc.enclave_id)
        bsp = svc.enclave.assignment.core_ids[0]
        # Enqueue without ringing the doorbell: stays unacknowledged.
        ctx.queues[bsp].enqueue(CommandType.PING)
        cp = env.recovery.checkpoint_now("cp")
        assert cp.pending_commands == ((0, (CommandType.PING,)),)


class TestRestoreRoundTrip:
    def test_resource_assignment_round_trips(self, env, small_layout):
        """Property: the restored incarnation's resource shape equals the
        pre-fault checkpoint's."""
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="rt"
        )
        pre = env.recovery.checkpoints.latest[svc.enclave_id].resources
        crash(svc.enclave)
        assert svc.phase is RecoveryPhase.RUNNING
        post = env.recovery.checkpoints.latest[svc.enclave_id].resources
        assert post.cores_per_zone == pre.cores_per_zone
        assert post.mem_per_zone == pre.mem_per_zone
        assert post.kernel_type == pre.kernel_type

    def test_xemem_exports_round_trip(self, env, small_layout):
        """Property: restored exports match the pre-fault snapshot —
        names, sizes, and surviving attachers."""
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="rt"
        )
        peer = env.launch(small_layout, CovirtConfig.full(), name="peer")
        task = svc.enclave.kernel.spawn("exporter", mem_bytes=2 * MiB)
        for name in ("buf-a", "buf-b"):
            seg = env.mcp.xemem.make(
                svc.enclave_id, name, task.slices[0].start, MiB
            )
            env.mcp.xemem.attach(HOST_ENCLAVE_ID, seg.segid)
        extra = env.mcp.xemem.make(
            svc.enclave_id, "buf-peer", task.slices[0].start + MiB, MiB
        )
        env.mcp.xemem.attach(peer.enclave_id, extra.segid)
        env.recovery.checkpoint_now("rt")
        pre = {
            (s.name, s.size, tuple(sorted(s.attachments)))
            for s in env.mcp.xemem.names.segments_owned_by(svc.enclave_id)
        }
        old_id = svc.enclave_id
        crash(svc.enclave)
        assert svc.phase is RecoveryPhase.RUNNING
        assert svc.enclave_id != old_id
        post = {
            (s.name, s.size, tuple(sorted(s.attachments)))
            for s in env.mcp.xemem.names.segments_owned_by(svc.enclave_id)
        }
        assert post == pre
        # The peer can use its restored attachment.
        restored = env.mcp.xemem.names.lookup("buf-peer")
        assert peer.enclave_id in restored.attachments

    def test_tasks_and_pending_commands_replayed(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="rt"
        )
        svc.enclave.kernel.spawn("worker-0", mem_bytes=MiB, core_id=None)
        ctx = env.controller.context_for(svc.enclave_id)
        bsp = svc.enclave.assignment.core_ids[0]
        ctx.queues[bsp].enqueue(CommandType.PING)
        env.recovery.checkpoint_now("rt")
        crash(svc.enclave)
        assert svc.phase is RecoveryPhase.RUNNING
        names = {t.name for t in svc.enclave.kernel.tasks.values()}
        assert "worker-0" in names
        assert svc.last_replay is not None
        assert any(
            label.startswith("PING") for label in svc.last_replay.commands_replayed
        )

    def test_terminate_command_never_replayed(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="rt"
        )
        ctx = env.controller.context_for(svc.enclave_id)
        bsp = svc.enclave.assignment.core_ids[0]
        env.recovery.checkpoints.interval_cycles = 0  # checkpoint on every tick
        # The TERMINATE lands via the doorbell, so the supervisor's
        # periodic checkpoint (taken before the fault) must have seen it
        # pending; verify replay refuses it anyway via a manual enqueue.
        ctx.queues[bsp].enqueue(CommandType.TERMINATE)
        env.recovery.checkpoint_now("rt")
        crash(svc.enclave)
        assert svc.phase is RecoveryPhase.RUNNING
        assert svc.last_replay is not None
        assert svc.last_replay.commands_replayed == []
        assert any(
            label.startswith("TERMINATE")
            for label in svc.last_replay.commands_skipped
        )
