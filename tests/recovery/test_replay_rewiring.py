"""Replay dependent-rewiring and the scrub refusal paths that the rest
of tests/recovery/ does not reach.

Rewiring: a relaunch mints a fresh enclave id, so every checkpointed
resource that *names* the dead incarnation — vector-grant destinations,
SERVICE-marked senders, dependent notifications — must be rewritten to
the successor's id during REPLAYING.  Scrub refusals: each individual
residue check (XEMEM ownership, lingering attachments, open channels,
controller contexts, unreturned cores) must independently veto the
relaunch and park the service with the fault's exact key preserved.
"""

from __future__ import annotations

import pytest

from repro.core.faults import EnclaveFaultError, FaultKey
from repro.core.features import CovirtConfig
from repro.harness.env import Layout
from repro.hw.memory import PAGE_SIZE
from repro.recovery.policy import RestartAlways
from repro.recovery.scrub import ScrubError
from repro.recovery.supervisor import RecoveryPhase
from repro.xemem.segment import Attachment, HOST_ENCLAVE_ID, Segment

GiB = 1 << 30
MiB = 1 << 20

#: The key every wild read in this file produces (addresses collapse to
#: ``<addr>`` in the detail class, so it is stable across runs).
WILD_READ_CLASS = "EPT violation: read of unmapped gpa <addr>"


def wild_read_key(enclave_id: int) -> FaultKey:
    return FaultKey("ept_violation", enclave_id, WILD_READ_CLASS)


def crash(enclave) -> None:
    bsp = enclave.assignment.core_ids[0]
    try:
        enclave.port.read(bsp, 50 * GiB, 8)
    except EnclaveFaultError:
        pass


@pytest.fixture
def supervised(env, small_layout):
    """A supervised service with auto-recovery ON (crash → recover)."""
    return env.launch_supervised(
        small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
    )


@pytest.fixture
def parked(env, small_layout):
    """A faulted service parked in TERMINATED with auto-recovery off, so
    tests can plant residue before manual recovery."""
    env.recovery.auto = False
    svc = env.launch_supervised(
        small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
    )
    crash(svc.enclave)
    assert svc.phase is RecoveryPhase.TERMINATED
    return svc


class TestGrantRewiring:
    def test_service_marked_grant_rewired_to_successor(self, env, supervised):
        svc = supervised
        old_id = svc.enclave_id
        bsp = svc.enclave.assignment.core_ids[0]
        # A self-IPI doorbell: both the destination and the sender name
        # the current incarnation, so the checkpoint stores them as
        # SERVICE markers and replay must resolve both to the new id.
        env.mcp.vectors.allocate(
            dest_core=bsp,
            dest_enclave_id=old_id,
            allowed_senders={old_id},
            purpose="doorbell:rewire-test",
        )
        env.recovery.checkpoint_now("svc")
        crash(svc.enclave)
        assert svc.phase is RecoveryPhase.RUNNING
        new_id = svc.enclave_id
        assert new_id != old_id
        assert svc.history == [wild_read_key(old_id)]
        assert "doorbell:rewire-test" in svc.last_replay.grants_restored
        # Nothing still names the corpse; the restored grant names the
        # successor on both sides.
        assert not env.mcp.vectors.grants_involving(old_id)
        restored = [
            g
            for g in env.mcp.vectors.grants_involving(new_id)
            if g.purpose == "doorbell:rewire-test"
        ]
        assert len(restored) == 1
        assert restored[0].dest_enclave_id == new_id
        assert restored[0].allowed_senders == {new_id}

    def test_foreign_sender_preserved_dest_rewired(self, env, supervised):
        svc = supervised
        old_id = svc.enclave_id
        peer = env.launch(
            Layout("peer", {0: 1}, {0: 512 * MiB}),
            CovirtConfig.full(),
            name="peer",
        )
        bsp = svc.enclave.assignment.core_ids[0]
        env.mcp.vectors.allocate(
            dest_core=bsp,
            dest_enclave_id=old_id,
            allowed_senders={peer.enclave_id},
            purpose="peer-signal",
        )
        env.recovery.checkpoint_now("svc")
        crash(svc.enclave)
        new_id = svc.enclave_id
        restored = [
            g
            for g in env.mcp.vectors.grants_involving(new_id)
            if g.purpose == "peer-signal"
        ]
        assert len(restored) == 1
        # The foreign sender is a real id, not a SERVICE marker: it must
        # survive verbatim while the destination moves to the successor.
        assert restored[0].dest_enclave_id == new_id
        assert restored[0].allowed_senders == {peer.enclave_id}
        assert old_id not in restored[0].allowed_senders


class TestDependentRewiring:
    def test_attachers_restored_and_renotified(self, env, supervised):
        svc = supervised
        old_id = svc.enclave_id
        peer = env.launch(
            Layout("peer", {0: 1}, {0: 512 * MiB}),
            CovirtConfig.full(),
            name="peer",
        )
        start = svc.enclave.assignment.regions[0].start
        seg = env.mcp.xemem.make(old_id, "svc-buf", start, 4 * PAGE_SIZE)
        env.mcp.xemem.attach(peer.enclave_id, seg.segid)
        env.recovery.checkpoint_now("svc")
        crash(svc.enclave)
        assert svc.phase is RecoveryPhase.RUNNING
        new_id = svc.enclave_id
        report = svc.last_replay
        assert "svc-buf" in report.segments_reexported
        assert ("svc-buf", peer.enclave_id) in report.attachments_restored
        # The teardown told the peer its attachment died; replay must
        # tell the same dependent the service is back.  (The host is
        # notified too, for the severed command channel.)
        assert peer.enclave_id in report.dependents_notified
        reborn = env.mcp.xemem.names.lookup("svc-buf")
        assert reborn.owner_enclave_id == new_id
        assert peer.enclave_id in reborn.attachments


class TestScrubRefusalPaths:
    """One test per residue check test_scrub.py leaves unexercised.

    Each plants exactly one kind of leak on a TERMINATED corpse and
    asserts (a) the scrubber names it, (b) the service parks in
    SCRUB_FAILED, and (c) the fault's exact key is still pending — a
    refused recovery must not launder the fault away.
    """

    def _assert_parked(self, svc, old_id: int) -> None:
        assert svc.phase is RecoveryPhase.SCRUB_FAILED
        assert svc.enclave_id == old_id
        assert svc.incarnation == 1
        assert svc.pending_key == wild_read_key(old_id)

    def test_leaked_owned_segment(self, env, parked):
        svc = parked
        old_id = svc.enclave_id
        names = env.mcp.xemem.names
        leak = Segment(
            segid=names.allocate_segid(),
            name="leak-seg",
            owner_enclave_id=old_id,
            start=0,
            size=PAGE_SIZE,
        )
        names.register(leak)
        with pytest.raises(ScrubError, match="XEMEM segments still registered"):
            env.recovery.recover("svc")
        self._assert_parked(svc, old_id)

    def test_lingering_attachment(self, env, parked):
        svc = parked
        old_id = svc.enclave_id
        names = env.mcp.xemem.names
        host_seg = Segment(
            segid=names.allocate_segid(),
            name="host-seg",
            owner_enclave_id=HOST_ENCLAVE_ID,
            start=0,
            size=PAGE_SIZE,
        )
        host_seg.attachments[old_id] = Attachment(
            host_seg.segid, old_id, host_seg.start
        )
        names.register(host_seg)
        with pytest.raises(ScrubError, match="still attached to segments"):
            env.recovery.recover("svc")
        self._assert_parked(svc, old_id)

    def test_open_command_channel(self, env, small_layout):
        env.recovery.auto = False
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        old_id = svc.enclave_id
        channel = env.mcp.channels[old_id]
        crash(svc.enclave)
        assert old_id not in env.mcp.channels  # teardown closed it
        env.mcp.channels[old_id] = channel  # simulate a close that leaked
        with pytest.raises(ScrubError, match="command channel"):
            env.recovery.recover("svc")
        self._assert_parked(svc, old_id)
        del env.mcp.channels[old_id]

    def test_stale_controller_context(self, env, small_layout):
        env.recovery.auto = False
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        old_id = svc.enclave_id
        ctx = env.controller.contexts[old_id]
        crash(svc.enclave)
        assert old_id not in env.controller.contexts  # teardown popped it
        env.controller.contexts[old_id] = ctx  # simulate a leaked context
        with pytest.raises(ScrubError, match="controller context"):
            env.recovery.recover("svc")
        self._assert_parked(svc, old_id)
        del env.controller.contexts[old_id]

    def test_core_never_returned_to_host(self, env, small_layout):
        # Reclaim empties the corpse's assignment, so the core check is
        # only meaningful with the *pre-crash* core list — which is why
        # it must be captured before the fault and passed explicitly.
        env.recovery.auto = False
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        old_id = svc.enclave_id
        old_cores = tuple(svc.enclave.assignment.core_ids)
        stolen = old_cores[-1]
        crash(svc.enclave)
        assert stolen in env.host.online_cores  # honest teardown returned it
        env.host.online_cores.discard(stolen)
        with pytest.raises(ScrubError, match="never returned to the host"):
            env.recovery.scrubber.scrub_or_raise(old_id, old_cores)
        report = env.recovery.scrubber.scrub(old_id, old_cores)
        assert [v for v in report.violations if f"[{stolen}]" in v]
        env.host.online_cores.add(stolen)
