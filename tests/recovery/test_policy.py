"""Unit tests for the recovery policies (pure decision functions)."""

from __future__ import annotations

import pytest

from repro.core.faults import FaultKey, detail_class
from repro.pisces.resources import ResourceSpec
from repro.recovery.policy import (
    Failover,
    PolicyContext,
    Quarantine,
    RecoveryAction,
    RestartAlways,
    RestartWithBackoff,
)

GiB = 1 << 30


def key(kind: str = "ept_violation", enclave_id: int = 1, detail: str = "x") -> FaultKey:
    return FaultKey(kind, enclave_id, detail_class(detail))


def spec() -> ResourceSpec:
    return ResourceSpec(
        cores_per_zone={0: 1, 1: 1}, mem_per_zone={0: GiB, 1: GiB}, name="svc"
    )


def ctx(history: list[FaultKey], tsc: int = 1_000, num_zones: int = 2) -> PolicyContext:
    return PolicyContext(
        key=history[-1],
        history=history,
        detection_tsc=tsc,
        spec=spec(),
        num_zones=num_zones,
    )


class TestRestartAlways:
    def test_always_restarts(self):
        policy = RestartAlways()
        history = [key() for _ in range(50)]
        decision = policy.decide(ctx(history))
        assert decision.action is RecoveryAction.RESTART
        assert decision.delay_cycles == 0


class TestRestartWithBackoff:
    def test_schedule_is_exponential(self):
        policy = RestartWithBackoff(
            base_delay_cycles=1_000, factor=2, jitter_fraction=0.0,
            max_delay_cycles=1 << 40,
        )
        delays = [policy.delay_for(attempt, 0) for attempt in range(1, 6)]
        assert delays == [1_000, 2_000, 4_000, 8_000, 16_000]

    def test_schedule_is_capped(self):
        policy = RestartWithBackoff(
            base_delay_cycles=1_000, factor=10, max_delay_cycles=5_000,
            jitter_fraction=0.0,
        )
        assert policy.delay_for(10, 0) == 5_000

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RestartWithBackoff(
            base_delay_cycles=10_000, factor=1, jitter_fraction=0.5
        )
        a = policy.delay_for(1, detection_tsc=12345)
        b = policy.delay_for(1, detection_tsc=12345)
        assert a == b  # same sim state → same delay: runs replay identically
        assert 10_000 <= a < 15_000
        # Different detection times spread across the span.
        spread = {policy.delay_for(1, t) for t in range(1, 200)}
        assert len(spread) > 10

    def test_decide_restarts_with_growing_delay(self):
        policy = RestartWithBackoff(
            base_delay_cycles=1_000, factor=2, jitter_fraction=0.0
        )
        history: list[FaultKey] = []
        delays = []
        for _ in range(3):
            history.append(key())
            decision = policy.decide(ctx(list(history)))
            assert decision.action is RecoveryAction.RESTART
            delays.append(decision.delay_cycles)
        assert delays == [1_000, 2_000, 4_000]

    def test_give_up_threshold(self):
        policy = RestartWithBackoff(max_retries=3)
        history = [key() for _ in range(3)]
        assert policy.decide(ctx(history)).action is RecoveryAction.RESTART
        history.append(key())
        decision = policy.decide(ctx(history))
        assert decision.action is RecoveryAction.GIVE_UP
        assert "gave up" in decision.reason


class TestFailover:
    def test_rotates_zones(self):
        policy = Failover()
        respec = policy.placement_for(spec(), attempt=1, num_zones=2)
        assert respec.cores_per_zone == {1: 1, 0: 1}  # symmetric spec: same shape
        lopsided = ResourceSpec(
            cores_per_zone={0: 2}, mem_per_zone={0: GiB}, name="svc"
        )
        moved = policy.placement_for(lopsided, attempt=1, num_zones=2)
        assert moved.cores_per_zone == {1: 2}
        assert moved.mem_per_zone == {1: GiB}
        back = policy.placement_for(lopsided, attempt=2, num_zones=2)
        assert back.cores_per_zone == {0: 2}

    def test_single_zone_machine_keeps_placement(self):
        policy = Failover()
        original = spec()
        assert policy.placement_for(original, 3, num_zones=1) is original

    def test_decide_carries_respec(self):
        policy = Failover()
        lopsided = ResourceSpec(
            cores_per_zone={0: 1}, mem_per_zone={0: GiB}, name="svc"
        )
        context = PolicyContext(
            key=key(), history=[key()], detection_tsc=0,
            spec=lopsided, num_zones=2,
        )
        decision = policy.decide(context)
        assert decision.action is RecoveryAction.RESTART
        assert decision.respec is not None
        assert decision.respec.cores_per_zone == {1: 1}


class TestQuarantine:
    def test_same_signature_quarantines(self):
        policy = Quarantine(inner=RestartAlways(), max_repeats=3)
        # The *same bug* across different incarnations: different enclave
        # ids, identical (kind, detail-class) signature.
        history = [
            key(enclave_id=i, detail="EPT violation: read of gpa 0xdead000")
            for i in (1, 5, 9)
        ]
        decision = policy.decide(ctx(history))
        assert decision.action is RecoveryAction.QUARANTINE
        assert "repeated" in decision.reason

    def test_distinct_signatures_do_not_group(self):
        policy = Quarantine(inner=RestartAlways(), max_repeats=3)
        history = [
            key(detail="EPT violation: read of gpa 0x1000"),
            key(kind="abort_exception", detail="DOUBLE_FAULT"),
            key(kind="triple_fault", detail="guest triple fault"),
        ]
        decision = policy.decide(ctx(history))
        assert decision.action is RecoveryAction.RESTART

    def test_detail_class_collapses_addresses_and_counts(self):
        # Grouping must survive varying addresses in the detail string.
        a = key(enclave_id=1, detail="read of unmapped gpa 0xc80000000")
        b = key(enclave_id=7, detail="read of unmapped gpa 0xdeadbeef00")
        assert a.signature == b.signature
        c = key(enclave_id=1, detail="vector 150 dropped")
        d = key(enclave_id=1, detail="vector 99 dropped")
        assert c.signature == d.signature
        assert a.signature != c.signature

    def test_delegates_below_threshold(self):
        inner = RestartWithBackoff(base_delay_cycles=777, jitter_fraction=0.0)
        policy = Quarantine(inner=inner, max_repeats=5)
        decision = policy.decide(ctx([key()]))
        assert decision.action is RecoveryAction.RESTART
        assert decision.delay_cycles == 777


class TestCovirtFaultKey:
    def test_fault_key_is_stable_and_hashable(self):
        from repro.core.faults import CovirtFault, FaultKind

        f1 = CovirtFault(
            kind=FaultKind.EPT_VIOLATION, enclave_id=3, core_id=0,
            tsc=100, detail="read of unmapped gpa 0xc80000000",
        )
        f2 = CovirtFault(
            kind=FaultKind.EPT_VIOLATION, enclave_id=3, core_id=1,
            tsc=999, detail="read of unmapped gpa 0xc80000000",
        )
        assert f1.key() == f2.key()  # core/tsc don't affect identity
        assert hash(f1.key()) == hash(f2.key())
        assert f1.key().signature == ("ept_violation", "read of unmapped gpa <addr>")
