"""Scrub: a relaunch over leaked resources must be refused.

The whole point of Covirt is that faults don't leak protected
resources.  If one ever did, the recovery layer must surface it — not
launder it into a "successful" restart.  These tests simulate leaks by
hand-editing post-reclaim state and assert the scrubber rejects the
relaunch.
"""

from __future__ import annotations

import pytest

from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.hw.memory import MemoryRegion, PAGE_SIZE
from repro.linuxhost.host import LINUX_OWNER
from repro.pisces.resources import enclave_owner
from repro.recovery.policy import RestartAlways
from repro.recovery.scrub import ScrubError
from repro.recovery.supervisor import RecoveryPhase
from repro.xemem.segment import HOST_ENCLAVE_ID

GiB = 1 << 30


def crash(enclave) -> None:
    bsp = enclave.assignment.core_ids[0]
    try:
        enclave.port.read(bsp, 50 * GiB, 8)
    except EnclaveFaultError:
        pass


@pytest.fixture
def parked_service(env, small_layout):
    """A supervised service that has faulted with auto-recovery off, so
    the test can corrupt post-reclaim state before manual recovery."""
    env.recovery.auto = False
    svc = env.launch_supervised(
        small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
    )
    crash(svc.enclave)
    assert svc.phase is RecoveryPhase.TERMINATED
    return svc


class TestScrubRejection:
    def test_leaked_memory_rejects_relaunch(self, env, parked_service):
        svc = parked_service
        old_id = svc.enclave_id
        # Simulate a protection bug: a page that was reclaimed to the
        # host is still attributed to the dead enclave.
        region = MemoryRegion(0, 4 * PAGE_SIZE)
        env.machine.memory.transfer(region, LINUX_OWNER, enclave_owner(old_id))
        with pytest.raises(ScrubError) as exc:
            env.recovery.recover("svc")
        assert svc.phase is RecoveryPhase.SCRUB_FAILED
        assert "owned by" in str(exc.value)
        # No relaunch happened: the service still points at the corpse.
        assert svc.enclave_id == old_id
        assert svc.incarnation == 1
        rec = env.recovery.metrics.records[-1]
        assert rec.outcome == "scrub-failed"

    def test_lingering_vector_grant_rejects_relaunch(self, env, parked_service):
        svc = parked_service
        env.mcp.vectors.allocate(
            dest_core=0,
            dest_enclave_id=HOST_ENCLAVE_ID,
            allowed_senders={svc.enclave_id},
            purpose="leaked grant",
        )
        with pytest.raises(ScrubError, match="vector grant"):
            env.recovery.recover("svc")
        assert svc.phase is RecoveryPhase.SCRUB_FAILED

    def test_auto_mode_parks_instead_of_raising(self, env, small_layout):
        """In auto mode the scrub failure must not poison the fault
        path — the service parks and the fault still reaches the guest's
        caller as EnclaveFaultError."""
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        old_id = svc.enclave_id
        # Pre-arrange the leak: a grant naming the enclave that the MCP's
        # release path doesn't know about (registered against the host
        # core so enclave teardown misses it is simulated by re-adding
        # after the fault via a fault hook ordering trick — simplest is
        # to leak memory attribution instead, which survives reclaim).
        leak = MemoryRegion(0, PAGE_SIZE)

        def leak_on_failure(enclave_id, record, _leak=leak):
            if enclave_id == old_id:
                env.machine.memory.transfer(
                    _leak, LINUX_OWNER, enclave_owner(old_id)
                )

        # Runs before the supervisor's hook (registered earlier? no —
        # insert at the front to be safe).
        env.mcp.on_enclave_failed.insert(0, leak_on_failure)
        with pytest.raises(EnclaveFaultError):
            bsp = svc.enclave.assignment.core_ids[0]
            svc.enclave.port.read(bsp, 50 * GiB, 8)
        assert svc.phase is RecoveryPhase.SCRUB_FAILED
        assert svc.incarnation == 1
        assert env.recovery.metrics.records[-1].outcome == "scrub-failed"

    def test_clean_scrub_allows_relaunch(self, env, parked_service):
        svc = parked_service
        env.recovery.recover("svc")
        assert svc.phase is RecoveryPhase.RUNNING
        assert svc.incarnation == 2


class TestScrubReport:
    def test_clean_report_on_honest_teardown(self, env, small_layout):
        """Scrub runs pre-relaunch: after Covirt's honest fault path,
        every resource of the dead incarnation is back with the host."""
        env.recovery.auto = False
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        old_id = svc.enclave_id
        old_cores = tuple(svc.enclave.assignment.core_ids)
        crash(svc.enclave)
        report = env.recovery.scrubber.scrub(old_id, old_cores)
        assert report.clean
        assert report.checks_run >= 8
        assert "CLEAN" in report.render()

    def test_scrub_cost_charged_to_clock(self, env, small_layout):
        svc = env.launch_supervised(
            small_layout, CovirtConfig.full(), RestartAlways(), name="svc"
        )
        before = env.machine.clock.now
        report = env.recovery.scrubber.scrub(svc.enclave_id + 999)
        assert env.machine.clock.now == before + report.cost_cycles
        assert report.cost_cycles > 0
