"""Behavioural coverage: stable edge ids from the obs layer's output.

Coverage is *passive* — it watches the span stream, step outcomes,
oracle states, and recovery phases the simulator already emits, and
hashes normalized features into edge ids.  Two invariants matter:

* determinism — identical runs produce identical coverage, and merge
  order never changes the merged map;
* independence — coverage is advisory metadata, never part of the run
  fingerprint and never compared on replay, so instrumentation changes
  cannot break the committed corpus.
"""

from __future__ import annotations

import pytest

from repro.fuzz import FuzzEngine, replay_run
from repro.fuzz.coverage import (
    COVERAGE_VERSION,
    CoverageMap,
    StepCoverage,
    edge_id,
    normalize,
)


class TestNormalize:
    def test_digits_collapse(self):
        assert normalize("enclave 3 core 17") == "enclave # core #"

    def test_hex_addresses_collapse(self):
        assert normalize("gpa 0xdeadbeef") == "gpa <addr>"
        assert normalize("at 0x1000 and 0x2000") == "at <addr> and <addr>"

    def test_volatile_ids_never_mint_new_edges(self):
        assert normalize("launch enclave 1") == normalize("launch enclave 2")


class TestEdgeId:
    def test_stable_across_calls(self):
        assert edge_id("span:hv.exit.ept") == edge_id("span:hv.exit.ept")

    def test_distinct_features_distinct_ids(self):
        assert edge_id("span:a") != edge_id("span:b")

    def test_id_shape(self):
        ident = edge_id("step:launch:ok")
        assert len(ident) == 16
        assert int(ident, 16) >= 0


class TestCoverageMap:
    def test_observe_reports_only_new(self):
        cov = CoverageMap()
        first = cov.observe(["span:a", "span:b"])
        assert len(first) == 2
        again = cov.observe(["span:a", "span:c"])
        assert len(again) == 1
        assert len(cov) == 3

    def test_hits_accumulate(self):
        cov = CoverageMap()
        cov.observe(["span:a"])
        cov.observe(["span:a"])
        (ident,) = cov.ids() & set(cov.hits)
        assert cov.hits[ident] == 2

    def test_merge_is_commutative(self):
        a, b = CoverageMap(), CoverageMap()
        a.observe(["span:a", "span:b"])
        b.observe(["span:b", "span:c"])
        ab = CoverageMap()
        ab.merge(a)
        ab.merge(b)
        ba = CoverageMap()
        ba.merge(b)
        ba.merge(a)
        assert ab.to_dict() == ba.to_dict()

    def test_round_trip(self):
        cov = CoverageMap()
        cov.observe(["span:a", "pair:a->b"])
        clone = CoverageMap.from_dict(cov.to_dict())
        assert clone.to_dict() == cov.to_dict()

    def test_version_mismatch_rejected(self):
        doc = CoverageMap().to_dict()
        doc["coverage_version"] = COVERAGE_VERSION + 1
        with pytest.raises(ValueError, match="coverage version"):
            CoverageMap.from_dict(doc)


class TestEngineCoverage:
    def test_run_produces_coverage(self):
        engine = FuzzEngine(seed=1234, schedule="baseline")
        run = engine.run(30)
        assert len(engine.coverage) > 20
        assert run.coverage == sorted(engine.coverage.ids())

    def test_identical_runs_identical_coverage(self):
        a = FuzzEngine(seed=77, schedule="hostile")
        b = FuzzEngine(seed=77, schedule="hostile")
        ra, rb = a.run(30), b.run(30)
        assert ra.fingerprint == rb.fingerprint
        assert a.coverage.to_dict() == b.coverage.to_dict()

    def test_feature_families_present(self):
        engine = FuzzEngine(seed=1234, schedule="churn")
        engine.run(40)
        families = {f.split(":", 1)[0] for f in engine.coverage.edges.values()}
        assert {"step", "span", "edge", "pair"} <= families

    def test_coverage_is_not_fingerprinted(self):
        """Tampering with the recorded coverage must not affect replay:
        instrumentation-only changes never break corpus entries."""
        run = FuzzEngine(seed=55, schedule="baseline").run(25)
        run.coverage = ["0" * 16]
        result = replay_run(run)
        assert result.matches, result.describe()


class TestStepCoverage:
    def test_phases_and_oracles_become_features(self):
        cov = StepCoverage()
        cov.observe_oracle("no-cross-enclave-writes")
        assert any(
            f.startswith("oracle:") for f in cov.map.edges.values()
        )

    def test_span_buffer_drains_per_step(self):
        class Span:
            name = "hv.exit.ept"

        cov = StepCoverage()
        cov.on_span_close(Span())
        cov.observe_step("touch_outside", "fault:ept")
        features = set(cov.map.edges.values())
        assert "span:hv.exit.ept" in features
        assert "edge:touch_outside->hv.exit.ept" in features
        # Buffer drained: the next step sees no stale spans.
        cov.observe_step("noop", "ok")
        assert "edge:noop->hv.exit.ept" not in set(cov.map.edges.values())
