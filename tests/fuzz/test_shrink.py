"""The ddmin shrinker: a failing sequence minimizes to a short
reproducer that fails the same way.

The correct simulator never violates the standing oracles, so these
tests plant a *synthetic* oracle ("at most one XEMEM segment may
exist") to manufacture a failure with a known cause, then check the
shrinker isolates the few actions that matter."""

from __future__ import annotations

import pytest

from repro.fuzz import FuzzEngine, OracleViolation, replay_run, shrink_run

SEED = 21
SCHEDULE = "churn"


def make_engine(seed: int = SEED) -> FuzzEngine:
    engine = FuzzEngine(seed=seed, schedule=SCHEDULE)

    def too_many_segments(env):
        segs = env.mcp.xemem.names.segments()
        if len(segs) >= 2:
            raise OracleViolation("two-segments", f"{len(segs)} segments live")

    engine.oracles.add("two-segments", too_many_segments)
    return engine


@pytest.fixture
def failing_run():
    run = make_engine().run(120)
    assert run.failure is not None
    assert run.failure["kind"] == "oracle"
    assert run.failure["detail"].startswith("[two-segments]")
    return run


def execute(actions):
    return make_engine().replay(actions)


class TestShrink:
    def test_minimizes_preserving_failure(self, failing_run):
        result = shrink_run(failing_run, execute=execute)
        assert len(result.minimized.steps) < len(failing_run.steps)
        assert result.minimized.failure is not None
        assert result.minimized.failure["kind"] == "oracle"
        assert result.minimized.failure["detail"].startswith("[two-segments]")
        # The minimal reproducer for "two segments exist" needs at least
        # a launch and two exports.
        assert len(result.minimized.steps) >= 3
        assert result.executions <= 200
        assert "shrunk" in result.describe()

    def test_minimized_run_replays(self, failing_run):
        result = shrink_run(failing_run, execute=execute)
        # The minimized reproducer is itself a valid corpus entry: a
        # fresh engine (with the same synthetic oracle) reproduces the
        # failure from its action list alone.
        again = execute(result.minimized.actions)
        assert again.failure == result.minimized.failure
        assert again.fingerprint == result.minimized.fingerprint

    def test_refuses_clean_run(self):
        clean = FuzzEngine(seed=1, schedule="baseline").run(10)
        assert clean.failure is None
        with pytest.raises(ValueError, match="clean"):
            shrink_run(clean)

    def test_default_execute_without_custom_oracle(self):
        """Without the synthetic oracle the same action list is clean —
        replaying through the *default* execute path (fresh engine, no
        extra oracles) must not reproduce the synthetic failure, which
        is exactly why shrink_run takes an injectable execute."""
        run = make_engine().run(120)
        vanilla = FuzzEngine(seed=SEED, schedule=SCHEDULE).replay(run.actions)
        assert vanilla.failure is None
