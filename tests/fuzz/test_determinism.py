"""Oracle-determinism: the engine's RNG is the only entropy, so two
runs of the same ``(seed, schedule, steps)`` must agree on *everything*
observable — step outcomes, event traces, performance counters, final
clock, and the behavioural fingerprint."""

from __future__ import annotations

import pytest

from repro.fuzz import FuzzEngine, OracleViolation, SCHEDULES, replay_run
from repro.fuzz.engine import flatten_counters
from repro.perf.trace import TraceKind

pytestmark = pytest.mark.slow

STEPS = 50


def trace_lines(engine: FuzzEngine) -> list[str]:
    trace = engine.env.recovery.trace
    return [f"{r.tsc} {r.kind.value} {r.detail}" for r in trace.tail(trace.capacity)]


class TestDeterminism:
    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    def test_identical_twin_runs(self, schedule):
        a = FuzzEngine(seed=11, schedule=schedule)
        b = FuzzEngine(seed=11, schedule=schedule)
        run_a = a.run(STEPS)
        run_b = b.run(STEPS)
        assert [s.describe() for s in run_a.steps] == [
            s.describe() for s in run_b.steps
        ]
        assert trace_lines(a) == trace_lines(b)  # identical EventTrace
        assert flatten_counters(a.total_counters()) == flatten_counters(
            b.total_counters()
        )  # identical PerfCounters
        assert run_a.final_clock == run_b.final_clock
        assert run_a.fingerprint == run_b.fingerprint

    def test_different_seeds_diverge(self):
        run_a = FuzzEngine(seed=1, schedule="baseline").run(STEPS)
        run_b = FuzzEngine(seed=2, schedule="baseline").run(STEPS)
        assert run_a.fingerprint != run_b.fingerprint

    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    def test_replay_reproduces_recording(self, schedule):
        run = FuzzEngine(seed=3, schedule=schedule).run(STEPS)
        result = replay_run(run)
        assert result.matches, result.describe()
        assert result.diffs == []

    def test_replay_consumes_no_rng(self):
        run = FuzzEngine(seed=4, schedule="hostile").run(30)
        engine = FuzzEngine(seed=4, schedule="hostile")
        before = engine.rng.getstate()
        engine.replay(run.actions)
        assert engine.rng.getstate() == before


class TestMidRecoveryInjection:
    def test_injection_fires_during_recovery(self):
        engine = FuzzEngine(seed=1, schedule="recovery")
        engine.run(60)
        trace = engine.env.recovery.trace
        injects = [
            r for r in trace.tail(trace.capacity) if r.kind is TraceKind.INJECT
        ]
        assert injects, "recovery schedule never armed a mid-recovery fault"
        # The injected fault was contained: the run's oracles all held.
        assert engine.failure is None
        for r in injects:
            assert "mid-recovery fault" in r.detail


class TestOracleIntegration:
    def test_custom_oracle_violation_recorded(self):
        engine = FuzzEngine(seed=5, schedule="baseline")

        def always_fails(env):
            raise OracleViolation("synthetic", "this machine is haunted")

        engine.oracles.add("synthetic", always_fails)
        run = engine.run(10)
        assert run.failure is not None
        assert run.failure["kind"] == "oracle"
        assert run.failure["step"] == 0  # checked after the very first step
        assert "[synthetic]" in run.failure["detail"]
        # The violation lands in the event trace as an ORACLE record.
        trace = engine.env.recovery.trace
        assert any(
            r.kind is TraceKind.ORACLE for r in trace.tail(trace.capacity)
        )
        # The engine stops at the failing step.
        assert len(run.steps) == 1

    def test_standing_oracles_named(self):
        engine = FuzzEngine(seed=6)
        names = engine.oracles.names()
        for expected in (
            "host-integrity",
            "ownership-disjoint",
            "ept-coverage",
            "vector-whitelist-closure",
            "scrub-clean",
            "clock-monotonic",
        ):
            assert expected in names
