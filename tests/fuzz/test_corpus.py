"""Corpus round-trip and the committed regression corpus.

A corpus entry pins a run's complete observable behaviour — per-step
outcomes, clocks, counters, and the transcript fingerprint.  Replaying
it green means the machine still behaves byte-for-byte as it did when
the entry was recorded; any behavioural drift in the simulator shows up
here as a diff naming the first divergent step."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz import (
    ENGINE_VERSION,
    FORMAT_VERSION,
    FuzzEngine,
    FuzzRun,
    load_corpus,
    load_run,
    replay_run,
    save_run,
)

pytestmark = pytest.mark.slow

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        run = FuzzEngine(seed=8, schedule="churn").run(40)
        clone = FuzzRun.from_json(run.to_json())
        assert clone.to_dict() == run.to_dict()
        assert clone.seed == run.seed
        assert clone.schedule == run.schedule
        assert clone.fingerprint == run.fingerprint
        assert [s.describe() for s in clone.steps] == [
            s.describe() for s in run.steps
        ]

    def test_record_serialize_replay(self, tmp_path):
        run = FuzzEngine(seed=9, schedule="hostile").run(40)
        path = save_run(run, tmp_path)
        assert path.parent == tmp_path
        loaded = load_run(path)
        result = replay_run(loaded)
        assert result.matches, result.describe()

    def test_save_names_encode_provenance(self, tmp_path):
        run = FuzzEngine(seed=10, schedule="baseline").run(20)
        path = save_run(run, tmp_path)
        assert "baseline" in path.name
        assert "s10" in path.name
        assert run.fingerprint[:12] in path.name
        found = load_corpus(tmp_path)
        assert len(found) == 1
        assert found[0][0] == path


class TestVersioning:
    """Incompatible entries must be rejected with a clear message —
    never a ``KeyError`` from deep inside deserialization."""

    @pytest.fixture
    def entry(self) -> dict:
        return FuzzEngine(seed=4, schedule="baseline").run(5).to_dict()

    def test_current_versions_stamped(self, entry):
        assert entry["format"] == FORMAT_VERSION
        assert entry["engine"] == ENGINE_VERSION

    def test_old_format_rejected(self, entry):
        entry["format"] = 1
        with pytest.raises(ValueError, match="unsupported corpus format 1"):
            FuzzRun.from_dict(entry)

    def test_missing_format_rejected(self, entry):
        del entry["format"]
        with pytest.raises(ValueError, match="unsupported corpus format"):
            FuzzRun.from_dict(entry)

    def test_engine_mismatch_rejected(self, entry):
        entry["engine"] = ENGINE_VERSION + 1
        with pytest.raises(ValueError, match="engine version"):
            FuzzRun.from_dict(entry)

    def test_missing_required_keys_named(self, entry):
        del entry["fingerprint"]
        del entry["counters"]
        with pytest.raises(
            ValueError, match="missing required keys: .*fingerprint"
        ):
            FuzzRun.from_dict(entry)

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            FuzzRun.from_dict(["not", "a", "run"])  # type: ignore[arg-type]

    def test_load_run_names_the_file(self, tmp_path, entry):
        entry["format"] = 1
        path = tmp_path / "stale.json"
        path.write_text(__import__("json").dumps(entry))
        with pytest.raises(ValueError, match="stale.json"):
            load_run(path)

    def test_coverage_field_round_trips(self, entry):
        run = FuzzRun.from_dict(entry)
        assert run.coverage == entry["coverage"]
        assert run.coverage  # engine v2 always records coverage


class TestCommittedCorpus:
    def test_corpus_is_populated(self):
        assert len(CORPUS_FILES) >= 5

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
    )
    def test_entry_replays_byte_for_byte(self, path):
        run = load_run(path)
        result = replay_run(run)
        assert result.matches, (
            f"{path.name} diverged — the simulator's behaviour changed:\n"
            + result.describe()
        )

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
    )
    def test_entry_contains_contained_faults(self, path):
        """Every committed entry exercises containment: recorded wild
        accesses end in ``fault:``/``refused:`` outcomes, never in
        uncontained success or unexpected errors."""
        run = load_run(path)
        outcomes = [s.outcome for s in run.steps]
        assert not any(o.startswith("error:") for o in outcomes)
        assert not any("uncontained" in o for o in outcomes)
