"""Corpus round-trip and the committed regression corpus.

A corpus entry pins a run's complete observable behaviour — per-step
outcomes, clocks, counters, and the transcript fingerprint.  Replaying
it green means the machine still behaves byte-for-byte as it did when
the entry was recorded; any behavioural drift in the simulator shows up
here as a diff naming the first divergent step."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz import FuzzEngine, FuzzRun, load_corpus, load_run, replay_run, save_run

pytestmark = pytest.mark.slow

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        run = FuzzEngine(seed=8, schedule="churn").run(40)
        clone = FuzzRun.from_json(run.to_json())
        assert clone.to_dict() == run.to_dict()
        assert clone.seed == run.seed
        assert clone.schedule == run.schedule
        assert clone.fingerprint == run.fingerprint
        assert [s.describe() for s in clone.steps] == [
            s.describe() for s in run.steps
        ]

    def test_record_serialize_replay(self, tmp_path):
        run = FuzzEngine(seed=9, schedule="hostile").run(40)
        path = save_run(run, tmp_path)
        assert path.parent == tmp_path
        loaded = load_run(path)
        result = replay_run(loaded)
        assert result.matches, result.describe()

    def test_save_names_encode_provenance(self, tmp_path):
        run = FuzzEngine(seed=10, schedule="baseline").run(20)
        path = save_run(run, tmp_path)
        assert "baseline" in path.name
        assert "s10" in path.name
        assert run.fingerprint[:12] in path.name
        found = load_corpus(tmp_path)
        assert len(found) == 1
        assert found[0][0] == path


class TestCommittedCorpus:
    def test_corpus_is_populated(self):
        assert len(CORPUS_FILES) >= 5

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
    )
    def test_entry_replays_byte_for_byte(self, path):
        run = load_run(path)
        result = replay_run(run)
        assert result.matches, (
            f"{path.name} diverged — the simulator's behaviour changed:\n"
            + result.describe()
        )

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
    )
    def test_entry_contains_contained_faults(self, path):
        """Every committed entry exercises containment: recorded wild
        accesses end in ``fault:``/``refused:`` outcomes, never in
        uncontained success or unexpected errors."""
        run = load_run(path)
        outcomes = [s.outcome for s in run.steps]
        assert not any(o.startswith("error:") for o in outcomes)
        assert not any("uncontained" in o for o in outcomes)
