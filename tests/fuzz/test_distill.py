"""Corpus distillation: greedy set cover with deterministic output.

The load-bearing property (pinned here over synthetic runs and a seed
sweep): the distilled subset covers **exactly** the union of the input
coverage — nothing lost, nothing invented — and the result is a pure
function of the input *set*, independent of input order.
"""

from __future__ import annotations

import random

from repro.fuzz import FuzzRun, distill_runs, minimal_cover


def make_run(name: str, edges: list[str], failing: bool = False) -> FuzzRun:
    return FuzzRun(
        seed=len(name),
        schedule="baseline",
        steps=[],
        fingerprint=name * 8,  # distinct, deterministic, sortable
        final_clock=0,
        counters={},
        failure={"step": 0, "kind": "oracle", "detail": name} if failing else None,
        coverage=sorted(edges),
    )


class TestMinimalCover:
    def test_empty(self):
        assert minimal_cover([]) == []

    def test_single_item_covers_all(self):
        items = [
            (frozenset({"a", "b", "c"}), (0, "x")),
            (frozenset({"a"}), (0, "y")),
        ]
        assert minimal_cover(items) == [0]

    def test_greedy_picks_largest_gain_first(self):
        items = [
            (frozenset({"a"}), (1, "a")),
            (frozenset({"b", "c"}), (2, "b")),
            (frozenset({"a", "d"}), (2, "c")),
        ]
        chosen = minimal_cover(items)
        covered = frozenset().union(*(items[i][0] for i in chosen))
        assert covered == {"a", "b", "c", "d"}
        assert 1 in chosen and 2 in chosen

    def test_ties_break_deterministically(self):
        items = [
            (frozenset({"a", "b"}), (5, "zz")),
            (frozenset({"a", "b"}), (5, "aa")),
        ]
        # Identical gain — the smaller tie-break tuple wins.
        assert minimal_cover(items) == [1]

    def test_zero_gain_items_dropped(self):
        items = [
            (frozenset({"a", "b"}), (0, "x")),
            (frozenset({"b"}), (0, "y")),
            (frozenset(), (0, "z")),
        ]
        assert minimal_cover(items) == [0]


class TestDistillProperties:
    def test_output_covers_exactly_the_input_union(self):
        """Sweep: random corpora, random edge sets — the kept subset's
        union always equals the input union, exactly."""
        alphabet = [f"e{i}" for i in range(30)]
        for seed in range(25):
            rng = random.Random(seed)
            runs = [
                make_run(
                    f"r{seed}x{i}",
                    rng.sample(alphabet, rng.randrange(0, 12)),
                    failing=rng.random() < 0.15,
                )
                for i in range(rng.randrange(1, 15))
            ]
            expected = set()
            for run in runs:
                expected |= set(run.coverage)
            result = distill_runs(runs)
            kept_union = set()
            for run in result.kept:
                kept_union |= set(run.coverage)
            assert kept_union == expected, seed
            assert set(result.covered) == expected, seed
            assert len(result.kept) + len(result.dropped) == len(runs)

    def test_independent_of_input_order(self):
        runs = [
            make_run("a", ["e1", "e2"]),
            make_run("b", ["e2", "e3"]),
            make_run("c", ["e1", "e2", "e3"]),
            make_run("d", ["e4"]),
        ]
        fwd = distill_runs(runs)
        rev = distill_runs(list(reversed(runs)))
        assert [r.fingerprint for r in fwd.kept] == [
            r.fingerprint for r in rev.kept
        ]
        assert [r.fingerprint for r in fwd.dropped] == [
            r.fingerprint for r in rev.dropped
        ]

    def test_subsumed_runs_dropped(self):
        runs = [
            make_run("small", ["e1"]),
            make_run("big", ["e1", "e2", "e3"]),
        ]
        result = distill_runs(runs)
        assert [r.fingerprint for r in result.kept] == ["big" * 8]
        assert [r.fingerprint for r in result.dropped] == ["small" * 8]

    def test_failures_always_kept(self):
        runs = [
            make_run("finding", ["e1"], failing=True),
            make_run("covering", ["e1", "e2"]),
        ]
        result = distill_runs(runs)
        kept = {r.fingerprint for r in result.kept}
        assert "finding" * 8 in kept
        assert "covering" * 8 in kept  # still needed for e2

    def test_failures_can_be_dropped_when_disabled(self):
        runs = [
            make_run("finding", ["e1"], failing=True),
            make_run("covering", ["e1", "e2"]),
        ]
        result = distill_runs(runs, keep_failures=False)
        assert [r.fingerprint for r in result.kept] == ["covering" * 8]

    def test_ties_prefer_shorter_runs(self):
        long = make_run("long", ["e1", "e2"])
        long.steps = [None] * 5  # type: ignore[list-item]
        short = make_run("shrt", ["e1", "e2"])
        result = distill_runs([long, short])
        assert [r.fingerprint for r in result.kept] == ["shrt" * 8]
