"""Seeded property tests for the mutation engine.

No hypothesis dependency — the properties are checked over a seed sweep
with the stdlib only.  The three contracts that make coverage-guided
fuzzing sound here:

* **validity** — every mutant of a valid action sequence is itself a
  valid sequence (slot-addressed actions plus skip semantics mean any
  well-formed action is applicable in any state);
* **purity** — a mutant is a pure function of
  ``(parent_fingerprint, mutation_seed)``: same inputs, same mutant,
  across calls and processes;
* **replayability** — every mutant executes end-to-end on a fresh
  engine without unexpected errors.
"""

from __future__ import annotations

import pytest

from repro.fuzz import FuzzEngine, mutate_actions
from repro.fuzz.mutate import (
    MAX_MUTANT_LEN,
    MUTATORS,
    PARAM_DOMAINS,
    random_action,
    validate_actions,
)
from repro.fuzz.actions import ActionKind
from repro.fuzz.rng import named_stream

SEED_SWEEP = range(40)


@pytest.fixture(scope="module")
def parent():
    """One recorded run shared by the sweep (module-scoped: recording
    is the expensive part)."""
    return FuzzEngine(seed=1234, schedule="hostile").run(40)


class TestDomains:
    def test_every_action_kind_has_a_domain(self):
        assert set(PARAM_DOMAINS) == set(ActionKind)

    def test_random_actions_are_valid(self):
        rng = named_stream("test/random-actions", 7)
        actions = [random_action(rng) for _ in range(200)]
        assert validate_actions(actions) == []

    def test_all_kinds_reachable(self):
        rng = named_stream("test/kind-reach", 7)
        kinds = {random_action(rng).kind for _ in range(600)}
        assert kinds == set(ActionKind)


class TestMutationProperties:
    def test_every_mutant_is_valid(self, parent):
        for seed in SEED_SWEEP:
            mutant, ops = mutate_actions(
                parent.actions, parent.fingerprint, seed
            )
            problems = validate_actions(mutant)
            assert problems == [], (seed, ops, problems)
            assert 0 < len(mutant) <= MAX_MUTANT_LEN

    def test_mutation_is_deterministic_per_parent_and_seed(self, parent):
        for seed in SEED_SWEEP:
            a, ops_a = mutate_actions(parent.actions, parent.fingerprint, seed)
            b, ops_b = mutate_actions(parent.actions, parent.fingerprint, seed)
            assert ops_a == ops_b
            assert [x.to_dict() for x in a] == [x.to_dict() for x in b]

    def test_parent_fingerprint_seeds_the_stream(self, parent):
        """Different parents with the same mutation seed explore
        different mutants — the fingerprint is part of the RNG stream."""
        mutant_a, _ = mutate_actions(parent.actions, parent.fingerprint, 3)
        mutant_b, _ = mutate_actions(parent.actions, "f" * 64, 3)
        assert [x.to_dict() for x in mutant_a] != [
            x.to_dict() for x in mutant_b
        ]

    def test_ops_come_from_the_registry(self, parent):
        for seed in SEED_SWEEP:
            _, ops = mutate_actions(parent.actions, parent.fingerprint, seed)
            assert ops
            assert set(ops) <= set(MUTATORS)

    def test_seed_sweep_exercises_every_operator(self, parent):
        applied: set[str] = set()
        for seed in SEED_SWEEP:
            _, ops = mutate_actions(parent.actions, parent.fingerprint, seed)
            applied |= set(ops)
        assert applied == set(MUTATORS)


class TestMutantExecution:
    def test_mutants_replay_without_unexpected_errors(self, parent):
        """Skip semantics make every mutant executable: outcomes may be
        ``skip:``/``refused:``/``fault:``, but never ``error:``."""
        for seed in range(8):
            mutant, _ = mutate_actions(parent.actions, parent.fingerprint, seed)
            run = FuzzEngine(seed=seed, schedule=parent.schedule).replay(mutant)
            assert len(run.steps) == len(mutant)
            errors = [
                s.outcome for s in run.steps if s.outcome.startswith("error:")
            ]
            assert errors == []

    def test_mutant_runs_are_deterministic(self, parent):
        mutant, _ = mutate_actions(parent.actions, parent.fingerprint, 5)
        a = FuzzEngine(seed=5, schedule=parent.schedule).replay(mutant)
        b = FuzzEngine(seed=5, schedule=parent.schedule).replay(mutant)
        assert a.fingerprint == b.fingerprint
        assert a.coverage == b.coverage
