"""Named RNG streams: the single entropy source for every randomized
test and fuzz run in the repo."""

from __future__ import annotations

from repro.fuzz.rng import DEFAULT_SEED, FuzzRng, derive_seed, named_stream


class TestDerivation:
    def test_stable_across_calls(self):
        assert derive_seed(7, "a/b") == derive_seed(7, "a/b")

    def test_name_and_seed_both_matter(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_pinned_value(self):
        """The derivation is part of the corpus format: changing it
        invalidates every committed reproducer, so it is pinned here."""
        assert derive_seed(DEFAULT_SEED, "fuzz/baseline") == 15307997243066474325


class TestFuzzRng:
    def test_same_name_same_sequence(self):
        a = named_stream("t", 5)
        b = named_stream("t", 5)
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_names_diverge(self):
        a = named_stream("t1", 5)
        b = named_stream("t2", 5)
        assert [a.random() for _ in range(20)] != [b.random() for _ in range(20)]

    def test_fork_is_deterministic_and_independent(self):
        parent = named_stream("p", 5)
        child1 = parent.fork("c")
        # Draining the parent must not change what an identical fork
        # yields — forks derive from (root_seed, name), not stream state.
        parent.random()
        child2 = named_stream("p", 5).fork("c")
        assert [child1.random() for _ in range(10)] == [
            child2.random() for _ in range(10)
        ]

    def test_describe_names_seed_and_stream(self):
        rng = named_stream("stress", 42)
        text = rng.describe()
        assert "stress" in text
        assert "42" in text

    def test_numpy_generator_deterministic(self):
        g1 = named_stream("np", 3).numpy_generator()
        g2 = named_stream("np", 3).numpy_generator()
        assert list(g1.integers(0, 1 << 30, 16)) == list(g2.integers(0, 1 << 30, 16))

    def test_is_a_random_random(self):
        import random

        assert isinstance(named_stream("x"), random.Random)
        assert isinstance(named_stream("x"), FuzzRng)
