"""The fuzz-family exit-code contract, pinned.

CI scripting (the nightly farm included) distinguishes three outcomes:

* ``0`` — clean: nothing found, nothing diverged;
* ``1`` — a finding: an oracle violation / unexpected exception was
  (re)produced, or a corpus replay diverged;
* ``2`` — internal error: bad arguments, unreadable or incompatible
  corpus entries, or a crash in the tool itself.

Everything runs in-process through :func:`repro.cli.main` so the pins
cover the real dispatch path.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import cli
from repro.fuzz import FuzzEngine, save_run
from repro.fuzz.engine import FuzzEngine as EngineClass
from repro.fuzz.recorder import FuzzRun

CORPUS_DIR = Path(__file__).parent / "corpus"


@pytest.fixture(scope="module")
def tiny_sweep_spec(tmp_path_factory) -> Path:
    """A one-cell, one-seed pure sweep grid on disk (fast to run)."""
    from repro.sweep import SweepSpec

    spec = SweepSpec(
        schedules=("baseline",), enclaves=(0,), steps=8, seeds_per_cell=1
    )
    path = tmp_path_factory.mktemp("sweep") / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    return path


@pytest.fixture(scope="module")
def clean_entry(tmp_path_factory) -> Path:
    """A small recorded clean run on disk."""
    run = FuzzEngine(seed=21, schedule="baseline").run(15)
    assert run.failure is None
    return save_run(run, tmp_path_factory.mktemp("corpus"))


def fabricate_failure(run: FuzzRun) -> FuzzRun:
    run.failure = {
        "step": 0,
        "kind": "oracle",
        "detail": "[fabricated] injected by test",
    }
    return run


class TestExitZero:
    def test_fuzz_clean_single_run(self, capsys):
        assert cli.main(["fuzz", "--steps", "10", "--seed", "3"]) == 0

    def test_fuzz_clean_campaign(self, capsys):
        rc = cli.main(
            ["fuzz", "--budget", "8", "--steps", "10", "--quiet"]
        )
        assert rc == 0

    def test_replay_committed_entry(self, capsys):
        entry = sorted(CORPUS_DIR.glob("*.json"))[0]
        assert cli.main(["replay", str(entry)]) == 0

    def test_shrink_clean_entry_is_a_noop(self, clean_entry, capsys):
        assert cli.main(["shrink", str(clean_entry)]) == 0

    def test_distill_corpus_dir(self, clean_entry, capsys):
        assert cli.main(["distill", str(clean_entry.parent)]) == 0

    def test_sweep_clean_grid(self, tiny_sweep_spec, capsys):
        rc = cli.main(["sweep", "--spec", str(tiny_sweep_spec), "--quiet"])
        assert rc == 0

    def test_sweep_list_cells(self, tiny_sweep_spec, capsys):
        rc = cli.main(
            ["sweep", "--spec", str(tiny_sweep_spec), "--list-cells"]
        )
        assert rc == 0
        assert "baseline/e0" in capsys.readouterr().out


class TestExitOneFinding:
    def test_fuzz_returns_1_on_oracle_violation(self, monkeypatch, capsys):
        real_run = EngineClass.run

        def failing_run(self, steps):
            return fabricate_failure(real_run(self, steps))

        monkeypatch.setattr(EngineClass, "run", failing_run)
        assert cli.main(["fuzz", "--steps", "5", "--seed", "3"]) == 1

    def test_replay_returns_1_on_divergence(self, tmp_path, capsys):
        entry = sorted(CORPUS_DIR.glob("*.json"))[0]
        doc = json.loads(entry.read_text())
        doc["steps"][0]["outcome"] = "tampered-by-test"
        bad = tmp_path / "diverges.json"
        bad.write_text(json.dumps(doc))
        assert cli.main(["replay", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out

    def test_shrink_returns_1_when_failure_reproduces(
        self, tmp_path, monkeypatch, capsys
    ):
        run = FuzzEngine(seed=21, schedule="baseline").run(6)
        path = save_run(fabricate_failure(run), tmp_path)

        # Patch replay so every candidate "reproduces" the failure —
        # ddmin then minimizes and the CLI must report the finding.
        def fake_replay(self, actions):
            mini = FuzzRun(
                seed=21,
                schedule="baseline",
                steps=[],
                fingerprint="0" * 64,
                final_clock=0,
                counters={},
            )
            return fabricate_failure(mini)

        monkeypatch.setattr(EngineClass, "replay", fake_replay)
        assert cli.main(["shrink", str(path), "--max-executions", "8"]) == 1

    def test_shrink_returns_0_when_failure_is_stale(
        self, tmp_path, capsys
    ):
        """A fabricated failure that the real engine does not reproduce:
        the bug is gone, so the exit is clean."""
        run = FuzzEngine(seed=21, schedule="baseline").run(6)
        path = save_run(fabricate_failure(run), tmp_path)
        assert cli.main(["shrink", str(path), "--max-executions", "8"]) == 0
        assert "no longer reproduces" in capsys.readouterr().out


    def test_sweep_returns_1_on_a_failing_cell(
        self, tiny_sweep_spec, monkeypatch, capsys
    ):
        import repro.sweep.runner as sweep_runner

        real_run_cell = sweep_runner.run_cell

        def failing_run_cell(cell, seed, env=None):
            run = real_run_cell(cell, seed, env=env)
            run.failure = {
                "step": 0,
                "kind": "oracle",
                "detail": "[fabricated] injected by test",
            }
            return run

        monkeypatch.setattr(sweep_runner, "run_cell", failing_run_cell)
        rc = cli.main(["sweep", "--spec", str(tiny_sweep_spec), "--quiet"])
        assert rc == 1
        assert "FINDING:" in capsys.readouterr().out


class TestExitTwoInternalError:
    def test_fuzz_unknown_schedule(self, capsys):
        assert cli.main(["fuzz", "--schedule", "nope", "--steps", "5"]) == 2

    def test_fuzz_campaign_unknown_schedule(self, capsys):
        rc = cli.main(["fuzz", "--budget", "4", "--schedules", "nope"])
        assert rc == 2

    def test_fuzz_campaign_without_budget(self, capsys):
        assert cli.main(["fuzz", "--workers", "2", "--budget", "0"]) == 2

    def test_replay_missing_path(self, capsys):
        assert cli.main(["replay", "/nonexistent/corpus.json"]) == 2

    def test_replay_rejects_old_format(self, tmp_path, capsys):
        old = tmp_path / "format1.json"
        old.write_text(json.dumps({"format": 1, "seed": 0}))
        assert cli.main(["replay", str(old)]) == 2
        err = capsys.readouterr().err
        assert "unsupported corpus format" in err
        assert "KeyError" not in err

    def test_shrink_unreadable_entry(self, tmp_path, capsys):
        bad = tmp_path / "garbage.json"
        bad.write_text("{not json")
        assert cli.main(["shrink", str(bad)]) == 2

    def test_distill_empty_dir(self, tmp_path, capsys):
        assert cli.main(["distill", str(tmp_path)]) == 2

    def test_sweep_missing_spec_file(self, capsys):
        rc = cli.main(["sweep", "--spec", "/nonexistent/spec.json"])
        assert rc == 2

    def test_sweep_rejects_unknown_spec_schema_version(
        self, tmp_path, capsys
    ):
        from repro.sweep import SweepSpec

        doc = dict(SweepSpec().to_dict(), schema_version=99)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        assert cli.main(["sweep", "--spec", str(path)]) == 2
        assert "schema_version" in capsys.readouterr().err

    def test_sweep_rejects_bad_grid_axis(self, tmp_path, capsys):
        from repro.sweep import SweepSpec

        doc = dict(SweepSpec().to_dict(), schedules=["nope"])
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        assert cli.main(["sweep", "--spec", str(path)]) == 2
        assert "unknown schedule" in capsys.readouterr().err
