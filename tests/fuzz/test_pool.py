"""The campaign executor: parallel-merge determinism and the coverage
win from guidance.

Two acceptance-grade pins live here:

* the same ``(seed, budget)`` with 1 worker and with 4 workers yields a
  **byte-identical** merged coverage map and distilled corpus — the
  worker count is a throughput knob, never a behaviour knob;
* coverage-guided search reaches strictly more coverage edges than
  pure-random fuzzing under the same fixed ``(seed, budget)`` — the
  guidance signal pays for itself.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz import FuzzCampaign, load_corpus, replay_run, save_campaign
from repro.fuzz.pool import _execute_payload

#: Fixed acceptance-test parameters: small enough for tier-1, large
#: enough that mutation has had batches to act on.
PIN_SEED = 0xC0517
PIN_BUDGET = 32
PIN_STEPS = 40


class TestParallelMergeDeterminism:
    def test_workers_1_vs_4_byte_identical(self):
        one = FuzzCampaign(16, workers=1, steps=25, seed=PIN_SEED).run()
        four = FuzzCampaign(16, workers=4, steps=25, seed=PIN_SEED).run()

        # Merged coverage map: byte-identical serialization.
        assert json.dumps(one.coverage.to_dict(), sort_keys=True) == (
            json.dumps(four.coverage.to_dict(), sort_keys=True)
        )
        # Corpus (pre-distillation queue), in fold order.
        assert [r.to_json() for r in one.corpus] == [
            r.to_json() for r in four.corpus
        ]
        # Distilled corpus: byte-identical entries.
        assert [r.to_json() for r in one.distilled().kept] == [
            r.to_json() for r in four.distilled().kept
        ]
        assert one.growth == four.growth
        assert [r.to_json() for r in one.findings] == [
            r.to_json() for r in four.findings
        ]

    def test_batch_size_is_worker_count_independent(self):
        """The plan is a function of the campaign seed and fold history
        only — identical for any worker count by construction."""
        a = FuzzCampaign(8, workers=1, steps=10, seed=3)
        b = FuzzCampaign(8, workers=7, steps=10, seed=3)
        assert a._plan_batch(8) == b._plan_batch(8)


class TestGuidanceWins:
    def test_guided_beats_random_at_fixed_seed_and_budget(self):
        """The acceptance pin: under the same (seed, budget, steps),
        coverage-guided search reaches strictly more edges than the
        pure-random baseline."""
        guided = FuzzCampaign(
            PIN_BUDGET, steps=PIN_STEPS, seed=PIN_SEED, guided=True
        ).run()
        random_ = FuzzCampaign(
            PIN_BUDGET, steps=PIN_STEPS, seed=PIN_SEED, guided=False
        ).run()
        assert guided.edges > random_.edges, (
            f"guided {guided.edges} edges vs random {random_.edges}: "
            "coverage guidance stopped paying for itself"
        )
        # Guidance actually engaged: later batches mutated corpus parents.
        assert guided.executions == random_.executions == PIN_BUDGET
        assert len(guided.corpus) > 0


class TestCampaignSmoke:
    def test_tiny_session_and_distilled_replay(self, tmp_path):
        """Tier-1 smoke: a tiny coverage-guided session end-to-end, then
        replay every distilled corpus entry byte-for-byte."""
        result = FuzzCampaign(8, workers=1, steps=15, seed=11).run()
        assert result.executions == 8
        assert result.edges > 50
        summary = save_campaign(result, tmp_path)
        assert (tmp_path / "summary.json").is_file()
        assert (tmp_path / "coverage.json").is_file()
        assert summary["distilled_entries"] == len(
            summary["files"]["corpus"]
        )
        entries = load_corpus(tmp_path / "corpus")
        assert entries
        for path, run in entries:
            replay = replay_run(run)
            assert replay.matches, f"{path.name}: {replay.describe()}"

    def test_distilled_covers_union_of_campaign_coverage(self):
        result = FuzzCampaign(8, workers=1, steps=15, seed=11).run()
        distilled = result.distilled()
        union = set()
        for run in result.corpus + result.findings:
            union |= set(run.coverage)
        assert set(distilled.covered) == union

    def test_continuous_mode_stops_on_deadline(self):
        result = FuzzCampaign(0, workers=1, steps=5, seed=2).run_continuous(
            0.5
        )
        assert result.executions > 0
        assert result.batches == result.executions // 8 + (
            1 if result.executions % 8 else 0
        )

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            FuzzCampaign(4, schedules=("nope",))

    def test_task_descriptor_reexecutes_standalone(self):
        """Any planned task replays from its descriptor alone — the
        property the nightly farm's reproducer artifacts rely on."""
        campaign = FuzzCampaign(8, workers=1, steps=10, seed=9)
        result = campaign.run()
        assert result.corpus
        # Re-plan the first batch from a fresh campaign and re-execute
        # one task: identical run.
        replanned = FuzzCampaign(8, workers=1, steps=10, seed=9)
        batch = replanned._plan_batch(8)
        redo = _execute_payload(batch[0])
        assert redo["run"]["fingerprint"] == result.corpus[0].fingerprint
