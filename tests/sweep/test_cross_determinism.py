"""Cross-subsystem conformance: one (scenario, seed) — three surfaces.

A *pure* sweep cell (``enclaves == 0``) is by construction exactly
``FuzzEngine(seed, schedule).run(steps)``.  These tests drive the same
(schedule, seed, steps) through

1. the direct fuzz engine,
2. the ``repro sweep`` CLI (spec file -> sweep.json run records), and
3. a ``repro.serve`` :class:`~repro.serve.session.Session`

and require identical behavioural fingerprints and metric snapshots —
so the sweep harness and the serving daemon are provably running the
*same* simulated machine, not three lookalikes.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.fuzz.engine import FuzzEngine
from repro.serve.session import Session
from repro.sweep import SweepSpec, quick_spec
from repro.sweep.runner import run_cell

pytestmark = pytest.mark.sweep

SCHEDULE = "baseline"
STEPS = 24
BASE_SEED = 0x5EED


@pytest.fixture(scope="module")
def pure_spec() -> SweepSpec:
    return SweepSpec(
        schedules=(SCHEDULE,),
        enclaves=(0,),
        steps=STEPS,
        seeds_per_cell=1,
        base_seed=BASE_SEED,
    )


@pytest.fixture(scope="module")
def derived_seed(pure_spec) -> int:
    return pure_spec.seed_for(pure_spec.cells()[0], 0)


@pytest.fixture(scope="module")
def direct_run(derived_seed):
    return FuzzEngine(seed=derived_seed, schedule=SCHEDULE).run(STEPS)


@pytest.fixture(scope="module")
def cli_record(pure_spec, derived_seed, tmp_path_factory):
    out = tmp_path_factory.mktemp("sweep-out")
    spec_path = out / "spec.json"
    spec_path.write_text(json.dumps(pure_spec.to_dict()))
    rc = cli.main(
        ["sweep", "--spec", str(spec_path), "--out", str(out), "--quiet"]
    )
    assert rc == 0
    doc = json.loads((out / "sweep.json").read_text())
    (record,) = doc["cells"][0]["runs"]
    return record


class TestEngineVsSweep:
    def test_pure_cell_is_the_direct_engine_run(self, direct_run, derived_seed):
        cell = quick_spec().cells()[0]  # any pure cell shape
        run = run_cell(
            type(cell)(schedule=SCHEDULE, enclaves=0, steps=STEPS),
            derived_seed,
        )
        assert run.fingerprint == direct_run.fingerprint
        assert run.final_clock == direct_run.final_clock
        assert run.steps_applied == len(direct_run.steps)

    def test_cli_run_record_matches_the_direct_engine(
        self, cli_record, direct_run, derived_seed
    ):
        assert cli_record["seed"] == derived_seed
        assert cli_record["fingerprint"] == direct_run.fingerprint
        assert cli_record["final_clock"] == direct_run.final_clock
        assert cli_record["steps_applied"] == len(direct_run.steps)


class TestServeVsSweep:
    def test_served_session_fingerprints_identically(
        self, cli_record, derived_seed
    ):
        session = Session("conform", "tenant", SCHEDULE, derived_seed)
        session.step(STEPS)
        doc = session.inspect()
        assert doc["fingerprint"] == cli_record["fingerprint"]
        assert doc["clock"] == cli_record["final_clock"]
        assert doc["steps_applied"] == cli_record["steps_applied"]

    def test_sliced_serving_converges_to_the_same_fingerprint(
        self, cli_record, derived_seed
    ):
        """Chunked driving (as a real client would) must land on the
        same transcript as one straight run."""
        session = Session("conform2", "tenant", SCHEDULE, derived_seed)
        for chunk in (10, 10, 4):
            session.step(chunk)
        assert session.inspect()["fingerprint"] == cli_record["fingerprint"]

    def test_metric_snapshots_agree(self, cli_record, derived_seed):
        session = Session("conform3", "tenant", SCHEDULE, derived_seed)
        session.step(STEPS)
        exits = session.inspect()["exits_by_reason"]
        assert exits == cli_record["exits_by_reason"]


class TestTelemetryDeterminism:
    """Subscribing to the telemetry plane must never perturb a session:
    the taps are passive observers, so a watched run and an unwatched
    run of the same (scenario, seed, requests) are byte-identical."""

    def _drive(self, daemon_kwargs, subscribe, derived_seed, max_queue=None):
        from repro.serve.client import ServeClient
        from repro.serve.daemon import ServeDaemon

        daemon = ServeDaemon(tcp=("127.0.0.1", 0), **daemon_kwargs)
        daemon.start()
        try:
            watcher = None
            if subscribe:
                watcher = ServeClient(daemon.endpoint, tenant="watcher")
                watcher.subscribe(max_queue=max_queue)
            with ServeClient(daemon.endpoint, tenant="tenant") as driver:
                sid = driver.launch(
                    scenario=SCHEDULE, seed=derived_seed
                )["session_id"]
                for chunk in (10, 10, 4):
                    driver.step(sid, steps=chunk)
                doc = driver.inspect(sid)
            stats = None
            if watcher is not None:
                frames = watcher.read_frames(
                    count=1_000_000, max_seconds=2.0
                )
                stats = watcher.unsubscribe()
                stats["received"] = len(frames)
                watcher.close()
            return doc, stats
        finally:
            daemon.stop()

    def test_subscribed_run_fingerprints_identically(
        self, cli_record, derived_seed
    ):
        unwatched, _ = self._drive({}, False, derived_seed)
        watched, stats = self._drive({}, True, derived_seed)
        assert stats["received"] > 1, "the watcher saw live frames"
        assert watched["fingerprint"] == unwatched["fingerprint"]
        assert watched["fingerprint"] == cli_record["fingerprint"]
        assert watched["clock"] == unwatched["clock"]
        assert watched["exits_by_reason"] == unwatched["exits_by_reason"]

    def test_slow_subscriber_drops_without_perturbing(
        self, cli_record, derived_seed
    ):
        """A size-1 queue drops nearly everything — and the session's
        transcript still matches the unwatched run exactly."""
        watched, stats = self._drive({}, True, derived_seed, max_queue=1)
        assert stats["dropped"] >= 1, "the tiny queue must have dropped"
        assert watched["fingerprint"] == cli_record["fingerprint"]
        assert watched["clock"] == cli_record["final_clock"]
