"""The sweep executor: deterministic merge, worker invariance, and the
shared batching driver it inherits from ``repro.fuzz.pool``."""

from __future__ import annotations

import json

import pytest

from repro.fuzz.pool import BATCH_SIZE, run_batched
from repro.sweep import (
    SweepExecutor,
    SweepSpec,
    quick_spec,
    sweep_doc,
    write_artifacts,
)

pytestmark = pytest.mark.sweep


def _dump(result) -> str:
    return json.dumps(sweep_doc(result, quick=True), sort_keys=True)


class TestExecutor:
    def test_plans_the_full_grid_up_front(self):
        spec = quick_spec()
        executor = SweepExecutor(spec)
        assert len(executor.tasks) == len(spec.cells()) * spec.seeds_per_cell
        assert [t["index"] for t in executor.tasks] == list(
            range(len(executor.tasks))
        )

    def test_invalid_spec_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            SweepExecutor(SweepSpec(schedules=("nope",)))

    def test_quick_grid_runs_clean(self, quick_result):
        assert quick_result.failures == []
        assert quick_result.total_runs == 12
        assert set(quick_result.runs) == {
            c.cell_id() for c in quick_result.spec.cells()
        }

    def test_progress_callback_sees_every_batch(self):
        spec = quick_spec()
        lines: list[str] = []
        SweepExecutor(spec, batch_size=4).run(progress=lines.append)
        assert len(lines) == 3  # 12 runs / batch_size 4
        assert lines[-1].endswith("12/12 runs, 0 failures")


class TestWorkerInvariance:
    def test_two_workers_fold_byte_identically(self, quick_result):
        two = SweepExecutor(quick_spec(), workers=2).run()
        assert _dump(two) == _dump(quick_result)

    def test_batch_size_does_not_leak_into_results(self, quick_result):
        odd = SweepExecutor(quick_spec(), batch_size=5).run()
        assert _dump(odd) == _dump(quick_result)

    def test_artifact_files_identical_across_worker_counts(
        self, quick_result, tmp_path
    ):
        two = SweepExecutor(quick_spec(), workers=2).run()
        a = write_artifacts(quick_result, tmp_path / "w1", quick=True)
        b = write_artifacts(two, tmp_path / "w2", quick=True)
        assert set(a) == set(b) == {"sweep", "tables", "boxplot", "bench"}
        for name in a:
            assert a[name].read_bytes() == b[name].read_bytes(), name


class TestSharedBatchDriver:
    def test_fuzz_and_sweep_share_one_merge_helper(self):
        import repro.fuzz.pool as pool
        import repro.sweep.executor as executor

        assert executor.run_batched is pool.run_batched
        assert executor.BATCH_SIZE is pool.BATCH_SIZE

    def test_run_batched_folds_in_plan_order(self):
        planned = list(range(17))
        cursor = 0

        def plan(n):
            nonlocal cursor
            batch = planned[cursor: cursor + n]
            cursor += len(batch)
            return batch

        folded: list[int] = []
        stats = run_batched(
            lambda x: x * 10,
            plan,
            folded.append,
            lambda executed: executed < len(planned),
            workers=1,
            batch_size=BATCH_SIZE,
        )
        assert folded == [x * 10 for x in planned]
        assert stats.executed == 17
        assert stats.batches == 3

    def test_run_batched_honours_the_budget_cap(self):
        folded: list[int] = []
        stats = run_batched(
            lambda x: x,
            lambda n: list(range(n)),
            folded.append,
            lambda executed: executed < 100,
            workers=1,
            batch_size=8,
            budget=5,
        )
        assert stats.executed == 5
        assert len(folded) == 5
