"""Aggregation arithmetic and the two sweep document schemas."""

from __future__ import annotations

import json

import pytest

from repro.obs.schema import (
    FIGURE_RESULT_KEYS,
    SWEEP_SCHEMA_NAME,
    SWEEP_SCHEMA_VERSION,
    validate_bench,
    validate_sweep,
)
from repro.sweep import (
    aggregate,
    bench_doc,
    boxplot_doc,
    nearest_rank,
    render_markdown,
    sweep_doc,
)

pytestmark = pytest.mark.sweep


class TestNearestRank:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nearest_rank([], 0.95)

    def test_single_element(self):
        assert nearest_rank([7.0], 0.95) == 7.0

    def test_no_interpolation(self):
        values = [float(v) for v in range(1, 11)]
        assert nearest_rank(values, 0.95) == 10.0
        assert nearest_rank(values, 0.5) == 5.0
        assert nearest_rank(values, 0.9) == 9.0
        # Every answer is an actual sample, never a blend.
        assert nearest_rank([1.0, 2.0], 0.75) in (1.0, 2.0)

    def test_order_independent(self):
        assert nearest_rank([3.0, 1.0, 2.0], 0.95) == 3.0


class TestAggregate:
    def test_rows_follow_spec_cell_order(self, quick_result):
        rows = aggregate(quick_result)
        assert [r["cell"] for r in rows] == [
            c.cell_id() for c in quick_result.spec.cells()
        ]

    def test_rows_carry_the_bench_figure_keys(self, quick_result):
        for row in aggregate(quick_result):
            assert FIGURE_RESULT_KEYS["sweep"] <= set(row)
            assert row["seeds"] == quick_result.spec.seeds_per_cell
            assert row["p95_final_clock"] >= row["median_final_clock"]

    def test_markdown_lists_every_cell(self, quick_result):
        text = render_markdown(quick_result)
        assert text.startswith("# Scenario sweep")
        for cell in quick_result.spec.cells():
            assert f"`{cell.cell_id()}`" in text

    def test_boxplot_doc_groups_raw_points_by_cell(self, quick_result):
        doc = boxplot_doc(quick_result)
        assert doc["schema"] == "covirt-sweep-boxplot"
        assert len(doc["cells"]) == len(quick_result.spec.cells())
        for group in doc["cells"]:
            n = quick_result.spec.seeds_per_cell
            assert len(group["seeds"]) == n
            assert len(group["final_clocks"]) == n
            assert len(group["fingerprints"]) == n


class TestSweepSchema:
    @pytest.fixture(scope="class")
    def doc(self, quick_result):
        return sweep_doc(quick_result, quick=True)

    def test_valid_doc_passes(self, doc):
        assert validate_sweep(doc) == []
        assert doc["schema"] == SWEEP_SCHEMA_NAME
        assert doc["schema_version"] == SWEEP_SCHEMA_VERSION

    def test_json_round_trip_stays_valid(self, doc):
        assert validate_sweep(json.loads(json.dumps(doc))) == []

    def test_missing_key_reported(self, doc):
        broken = dict(doc)
        del broken["total_runs"]
        assert any("total_runs" in p for p in validate_sweep(broken))

    def test_wrong_schema_name_and_version(self, doc):
        broken = dict(doc, schema="other", schema_version=99)
        problems = validate_sweep(broken)
        assert any("schema" in p for p in problems)

    def test_empty_cells_rejected(self, doc):
        assert validate_sweep(dict(doc, cells=[])) != []

    def test_run_records_must_carry_the_identity_keys(self, doc):
        broken = json.loads(json.dumps(doc))
        del broken["cells"][0]["runs"][0]["fingerprint"]
        assert any("fingerprint" in p for p in validate_sweep(broken))

    def test_total_runs_consistency_checked(self, doc):
        broken = dict(doc, total_runs=doc["total_runs"] + 1)
        assert any("total_runs" in p for p in validate_sweep(broken))

    def test_non_object_document(self):
        assert validate_sweep([1, 2]) != []


class TestBenchDoc:
    def test_bench_doc_is_a_valid_covirt_bench_artifact(self, quick_result):
        doc = bench_doc(quick_result, quick=True)
        assert validate_bench(doc) == []
        assert doc["bench"] == "sweep"
        assert doc["exits_by_reason"]
        assert doc["results"] == aggregate(quick_result)
