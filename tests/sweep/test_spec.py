"""The scenario-generator DSL: grid expansion, validation, round-trips,
and the seed-derivation contract."""

from __future__ import annotations

import dataclasses

import pytest

from repro.fuzz.engine import SCHEDULES
from repro.fuzz.rng import DEFAULT_SEED
from repro.sweep import (
    SPEC_SCHEMA_NAME,
    SPEC_SCHEMA_VERSION,
    ScenarioCell,
    SweepSpec,
    full_spec,
    quick_spec,
)

pytestmark = pytest.mark.sweep


class TestScenarioCell:
    def test_cell_id_encodes_every_axis(self):
        cell = ScenarioCell(
            schedule="hostile",
            enclaves=2,
            numa="split",
            workloads=("STREAM", "HPCG"),
            adaptation="rewrite",
            policy="backoff",
            steps=40,
        )
        assert cell.cell_id() == (
            "hostile/e2/split/wl=STREAM+HPCG/rewrite/backoff/s40"
        )

    def test_round_trip(self):
        cell = ScenarioCell("churn", 1, "far", ("miniFE",), "ramp", "quarantine", 16)
        assert ScenarioCell.from_dict(cell.to_dict()) == cell

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown cell keys: typo"):
            ScenarioCell.from_dict({"schedule": "baseline", "typo": 1})

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"schedule": "nope"}, "unknown schedule"),
            ({"schedule": "baseline", "enclaves": 4}, "enclaves must be"),
            ({"schedule": "baseline", "numa": "donut"}, "unknown numa shape"),
            (
                {"schedule": "baseline", "enclaves": 1, "workloads": ("BadWL",)},
                "unknown workload",
            ),
            (
                {"schedule": "baseline", "enclaves": 1, "adaptation": "nope"},
                "unknown adaptation",
            ),
            ({"schedule": "baseline", "policy": "nope"}, "unknown policy"),
            ({"schedule": "baseline", "steps": 0}, "steps must be"),
        ],
    )
    def test_validate_names_the_bad_axis(self, kwargs, fragment):
        problems = ScenarioCell(**kwargs).validate()
        assert any(fragment in p for p in problems), problems

    def test_pure_cell_forbids_workloads_and_adaptations(self):
        cell = ScenarioCell("baseline", enclaves=0, workloads=("STREAM",))
        assert any("pure-engine" in p for p in cell.validate())
        cell = ScenarioCell("baseline", enclaves=0, adaptation="ramp")
        assert any("pure-engine" in p for p in cell.validate())

    def test_valid_cell_has_no_problems(self):
        assert ScenarioCell("baseline", enclaves=2, adaptation="reassign").validate() == []


class TestSweepSpec:
    def test_round_trip(self):
        spec = full_spec()
        again = SweepSpec.from_dict(spec.to_dict())
        assert again == spec
        assert [c.cell_id() for c in again.cells()] == [
            c.cell_id() for c in spec.cells()
        ]

    def test_to_dict_carries_the_schema_header(self):
        doc = quick_spec().to_dict()
        assert doc["schema"] == SPEC_SCHEMA_NAME
        assert doc["schema_version"] == SPEC_SCHEMA_VERSION

    def test_from_dict_rejects_wrong_schema_and_version(self):
        doc = quick_spec().to_dict()
        with pytest.raises(ValueError, match="schema must be"):
            SweepSpec.from_dict(dict(doc, schema="other"))
        with pytest.raises(ValueError, match="unknown spec schema_version"):
            SweepSpec.from_dict(dict(doc, schema_version=99))
        with pytest.raises(ValueError, match="must be an object"):
            SweepSpec.from_dict([1, 2])

    def test_from_dict_rejects_unknown_keys(self):
        doc = dict(quick_spec().to_dict(), extra_axis=[1])
        with pytest.raises(ValueError, match="unknown spec keys: extra_axis"):
            SweepSpec.from_dict(doc)

    def test_pure_cells_appear_once_not_per_mix_or_adaptation(self):
        spec = quick_spec()
        ids = [c.cell_id() for c in spec.cells()]
        assert len(ids) == len(set(ids))
        # enclaves=0 x {none, rewrite} collapses to one pure cell per
        # schedule: 2 schedules x (1 pure + 2 adorned e2) = 6 cells.
        assert len(ids) == 6
        pure = [i for i in ids if "/e0/" in i]
        assert len(pure) == 2
        assert all("/none/" in i for i in pure)

    def test_full_spec_shape(self):
        spec = full_spec()
        cells = spec.cells()
        # 4 schedules x 2 numa x 2 mixes x 4 adaptations, enclaves=2.
        assert len(cells) == 64
        assert spec.describe().startswith("sweep spec: 64 cells x 3 seeds")
        assert set(c.schedule for c in cells) == set(SCHEDULES)

    def test_validate_aggregates_cell_problems_without_duplicates(self):
        spec = dataclasses.replace(quick_spec(), schedules=("nope",))
        problems = spec.validate()
        assert len([p for p in problems if "unknown schedule" in p]) == 1

    def test_validate_rejects_empty_grid_and_bad_seed_count(self):
        spec = SweepSpec(schedules=(), seeds_per_cell=0)
        problems = spec.validate()
        assert any("no cells" in p for p in problems)
        assert any("seeds_per_cell" in p for p in problems)


class TestSeedDerivation:
    def test_seed_is_pure_in_spec_cell_and_index(self):
        spec = quick_spec()
        cell = spec.cells()[0]
        assert spec.seed_for(cell, 0) == quick_spec().seed_for(cell, 0)

    def test_seeds_differ_across_cells_and_indices(self):
        spec = quick_spec()
        cells = spec.cells()
        seeds = {
            spec.seed_for(cell, k)
            for cell in cells
            for k in range(spec.seeds_per_cell)
        }
        assert len(seeds) == len(cells) * spec.seeds_per_cell

    def test_base_seed_reseeds_the_whole_grid(self):
        a, b = quick_spec(base_seed=1), quick_spec(base_seed=2)
        cell = a.cells()[0]
        assert a.seed_for(cell, 0) != b.seed_for(cell, 0)

    def test_seed_fits_the_printable_32_bit_range(self):
        spec = full_spec(base_seed=DEFAULT_SEED)
        for cell in spec.cells():
            assert 0 <= spec.seed_for(cell, 0) <= 0xFFFFFFFF
