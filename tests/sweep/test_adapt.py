"""Adaptation scenarios: mid-run reconfiguration under oracle audit.

The property the paper's adaptation story needs — and these tests pin —
is that reassigning resources, rewriting whitelist/EPT state, and
ramping the fault rate *while the schedule keeps running* never
violates an ownership, EPT, whitelist, or accounting oracle: every
``run_cell`` below must come back with ``failure is None`` across
seeds, schedules, and NUMA shapes.

The quick grid's aggregate stats are additionally pinned against
``golden/quick_stats.json``; regenerate after an intentional
behavioural change with::

    pytest tests/sweep/test_adapt.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sweep import ADAPT_PHASES, ADAPTATIONS, aggregate, quick_spec
from repro.sweep.adapt import Rewrite
from repro.sweep.runner import _chunks, run_cell
from repro.sweep.spec import ScenarioCell

pytestmark = pytest.mark.sweep

GOLDEN = Path(__file__).parent / "golden" / "quick_stats.json"

ADAPT_NAMES = ("reassign", "rewrite", "ramp")


def _cell(adaptation: str, schedule: str = "baseline", **kwargs) -> ScenarioCell:
    kwargs.setdefault("enclaves", 2)
    kwargs.setdefault("steps", 24)
    return ScenarioCell(schedule=schedule, adaptation=adaptation, **kwargs)


class TestRegistry:
    def test_every_adaptation_registered(self):
        assert set(ADAPTATIONS) == {"none", "reassign", "rewrite", "ramp"}

    def test_factories_yield_fresh_state(self):
        # ``rewrite`` carries per-run grant state; sharing one instance
        # across runs would leak grants between cells.
        a, b = ADAPTATIONS["rewrite"](), ADAPTATIONS["rewrite"]()
        assert isinstance(a, Rewrite) and a is not b
        assert a._grants == [] and a._grants is not b._grants

    def test_chunk_plan_covers_the_budget(self):
        for steps in (1, 7, 24, 40):
            plan = _chunks(steps, ADAPT_PHASES)
            assert len(plan) == ADAPT_PHASES
            assert sum(plan) == steps
            assert all(c >= 0 for c in plan)


class TestAdaptationProperties:
    @pytest.mark.parametrize("adaptation", ADAPT_NAMES)
    @pytest.mark.parametrize("seed", [7, 1234, 0xC0517])
    def test_never_violates_an_oracle(self, adaptation, seed):
        run = run_cell(_cell(adaptation), seed)
        assert run.failure is None, run.failure
        assert run.steps_applied >= 24  # prologue + full schedule

    @pytest.mark.parametrize("adaptation", ADAPT_NAMES)
    @pytest.mark.parametrize("schedule", ["hostile", "recovery"])
    def test_holds_under_hostile_schedules(self, adaptation, schedule):
        run = run_cell(_cell(adaptation, schedule=schedule), seed=99)
        assert run.failure is None, run.failure

    @pytest.mark.parametrize("numa", ["flat", "split", "far"])
    def test_holds_across_numa_shapes(self, numa):
        run = run_cell(_cell("reassign", numa=numa), seed=11)
        assert run.failure is None, run.failure

    @pytest.mark.parametrize("policy", ["restart", "backoff", "quarantine"])
    def test_ramp_holds_under_every_recovery_policy(self, policy):
        run = run_cell(_cell("ramp", policy=policy, steps=32), seed=5)
        assert run.failure is None, run.failure

    @pytest.mark.parametrize("adaptation", ADAPT_NAMES)
    def test_pure_in_cell_and_seed(self, adaptation):
        cell = _cell(adaptation)
        first, second = run_cell(cell, 42), run_cell(cell, 42)
        assert first.fingerprint == second.fingerprint
        assert first.adapt_events == second.adapt_events
        assert first.to_dict() == second.to_dict()

    def test_adaptations_actually_fire(self):
        run = run_cell(_cell("rewrite"), seed=3)
        grants = [e for e in run.adapt_events if e.startswith("grant:vec")]
        assert grants, run.adapt_events
        assert any(e.startswith("xemem_make:") for e in run.adapt_events)
        ramp = run_cell(_cell("ramp"), seed=3)
        injected = [
            e
            for e in ramp.adapt_events
            if e.startswith(("touch_outside:", "raise_abort:"))
        ]
        # Phases 0..2 fire 1 + 2 + 3 injections unless a slot died.
        assert 1 <= len(injected) <= 6

    def test_rewrite_revokes_superseded_grants(self):
        run = run_cell(_cell("rewrite", steps=32), seed=8)
        revokes = [e for e in run.adapt_events if e.startswith("revoke:vec")]
        grants = [e for e in run.adapt_events if e.startswith("grant:vec")]
        assert revokes, run.adapt_events
        # The adaptation's own residue is bounded: each phase revokes
        # its predecessor's grant (when still live), so outstanding
        # adaptation grants never accumulate across the whole run.
        # (``active_grants`` itself also counts schedule-made grants.)
        assert len(grants) - len(revokes) <= ADAPT_PHASES - 1

    def test_prologue_launches_every_requested_slot(self):
        run = run_cell(_cell("none", enclaves=2), seed=1)
        prologue = [e for e in run.adapt_events if e.startswith("prologue:")]
        assert len(prologue) == 2
        assert all("ok" in e for e in prologue)


class TestGoldenStats:
    def test_quick_grid_stats_match_the_checked_in_golden(
        self, quick_result, update_golden
    ):
        rendered = json.dumps(aggregate(quick_result), indent=1, sort_keys=True) + "\n"
        if update_golden:
            GOLDEN.parent.mkdir(exist_ok=True)
            GOLDEN.write_text(rendered)
        assert rendered == GOLDEN.read_text(), (
            "quick-grid sweep stats diverged from tests/sweep/golden/"
            "quick_stats.json — if the behavioural change is intentional,"
            " rerun with --update-golden"
        )

    def test_golden_covers_the_whole_quick_grid(self, quick_result):
        golden = json.loads(GOLDEN.read_text())
        assert [row["cell"] for row in golden] == [
            c.cell_id() for c in quick_spec().cells()
        ]
