"""Shared fixtures for the sweep-harness suite.

The quick grid (6 cells x 2 seeds x 24 steps) takes well under a
second single-worker, so one session-scoped run backs every test that
needs a folded :class:`~repro.sweep.executor.SweepResult`.
"""

from __future__ import annotations

import pytest

from repro.sweep import SweepExecutor, quick_spec


@pytest.fixture(scope="session")
def quick_result():
    return SweepExecutor(quick_spec(), workers=1).run()
