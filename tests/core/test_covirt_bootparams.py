"""Covirt boot parameters: structure, memory round trip, live layout."""

import pytest

from repro.core.bootparams import COVIRT_PARAMS_MAGIC, CovirtBootParams
from repro.core.controller import PRIVATE_PAGES_PER_CORE
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.hw.memory import PAGE_SIZE, PhysicalMemory

GiB = 1 << 30


class TestStructure:
    def test_memory_roundtrip(self):
        memory = PhysicalMemory(16 * PAGE_SIZE)
        params = CovirtBootParams(
            core_id=3,
            pisces_params_addr=0x11000,
            command_queue_addr=0x12000,
            stack_addr=0x14000,
            feature_bits=0b10111,
        )
        params.write_to(memory, 0x3000)
        clone = CovirtBootParams.read_from(memory, 0x3000)
        assert clone == params

    def test_bad_magic_rejected(self):
        memory = PhysicalMemory(16 * PAGE_SIZE)
        memory.write_u64(0x3000, 0xDEAD)
        with pytest.raises(ValueError):
            CovirtBootParams.read_from(memory, 0x3000)

    def test_magic_value(self):
        assert COVIRT_PARAMS_MAGIC == 0xC0B1_2021


class TestLiveLayout:
    """The structure as actually written during a protected boot."""

    @pytest.fixture
    def booted(self):
        env = CovirtEnvironment()
        enclave = env.launch(
            Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB}),
            CovirtConfig.full(),
        )
        return env, enclave

    def test_per_core_params_in_private_memory(self, booted):
        env, enclave = booted
        ctx = enclave.virt_context
        for idx, core_id in enumerate(enclave.assignment.core_ids):
            base = (
                ctx.private_region.start
                + idx * PRIVATE_PAGES_PER_CORE * PAGE_SIZE
            )
            params = CovirtBootParams.read_from(
                env.machine.memory, base + PAGE_SIZE
            )
            assert params.core_id == core_id
            assert params.command_queue_addr == base
            assert params.stack_addr == base + 2 * PAGE_SIZE
            assert params.feature_bits == ctx.config.features.value

    def test_wraps_unmodified_pisces_params(self, booted):
        """The co-kernel receives the original Pisces structure."""
        env, enclave = booted
        ctx = enclave.virt_context
        base = ctx.private_region.start
        params = CovirtBootParams.read_from(env.machine.memory, base + PAGE_SIZE)
        from repro.pisces.bootparams import PiscesBootParams

        pisces = PiscesBootParams.read_from(
            env.machine.memory, params.pisces_params_addr
        )
        assert pisces.enclave_id == enclave.enclave_id
        assert pisces.core_ids == enclave.assignment.core_ids

    def test_guest_cannot_reach_covirt_params(self, booted):
        """The wrapper structure lives outside the EPT."""
        env, enclave = booted
        ctx = enclave.virt_context
        assert not ctx.ept.table.is_mapped(ctx.private_region.start + PAGE_SIZE)

    def test_stack_is_8k(self, booted):
        from repro.core.hypervisor import HYPERVISOR_STACK_BYTES

        assert HYPERVISOR_STACK_BYTES == 8 * 1024
        # 2 pages reserved per core for the stack in the private layout.
        assert PRIVATE_PAGES_PER_CORE * PAGE_SIZE >= (
            2 * PAGE_SIZE + HYPERVISOR_STACK_BYTES
        )
