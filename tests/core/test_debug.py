"""Fault dossiers: the debugging story from Section V."""

import pytest

from repro.core.controller import CovirtIoctl
from repro.core.debug import FaultDossier
from repro.core.faults import EnclaveFaultError, FaultKind
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.hw.msr import MSR

GiB = 1 << 30
LAYOUT = Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})


@pytest.fixture
def env():
    return CovirtEnvironment()


@pytest.fixture
def crashed(env):
    """An enclave with a rich history, then a fault."""
    enclave = env.launch(LAYOUT, CovirtConfig.full())
    bsp = enclave.assignment.core_ids[0]
    # Generate interesting state first.
    enclave.port.cpuid(bsp, 1)
    enclave.port.send_ipi(bsp, min(env.host.online_cores), 200)  # dropped
    enclave.port.wrmsr(bsp, MSR.IA32_APIC_BASE, 0xBAD)  # denied
    enclave.kernel.console.append("about to touch the shared buffer")
    with pytest.raises(EnclaveFaultError):
        enclave.port.read(bsp, 50 * GiB, 8)
    return env, enclave


class TestDossierCollection:
    def test_dossier_created_on_fault(self, crashed):
        env, enclave = crashed
        dossier = env.controller.dossiers[enclave.enclave_id]
        assert dossier.fault.kind is FaultKind.EPT_VIOLATION
        assert dossier.enclave_name == enclave.name

    def test_dossier_available_via_ioctl(self, crashed):
        env, enclave = crashed
        dossier = env.mcp.kmod.ioctl(CovirtIoctl.DOSSIER, enclave.enclave_id)
        assert isinstance(dossier, FaultDossier)

    def test_no_dossier_for_healthy_enclave(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.full())
        with pytest.raises(KeyError):
            env.mcp.kmod.ioctl(CovirtIoctl.DOSSIER, enclave.enclave_id)

    def test_core_snapshots_complete(self, crashed):
        env, enclave = crashed
        dossier = env.controller.dossiers[enclave.enclave_id]
        # (assignment.core_ids is already empty post-reclamation; the
        # dossier snapshotted before that.)
        assert len(dossier.cores) == enclave.spec.total_cores
        bsp_snap = dossier.cores[0]
        assert bsp_snap.halted
        assert bsp_snap.mode == "hypervisor"
        assert bsp_snap.exits_by_reason["ept_violation"] == 1
        assert bsp_snap.exits_by_reason["cpuid"] == 1

    def test_protection_history_preserved(self, crashed):
        env, enclave = crashed
        dossier = env.controller.dossiers[enclave.enclave_id]
        assert any("vector 200" in d for d in dossier.dropped_ipis)
        assert dossier.denied_msr_writes[0][1] == MSR.IA32_APIC_BASE
        assert dossier.ept_mapped_bytes == 2 * GiB

    def test_console_tail_captured(self, crashed):
        env, enclave = crashed
        dossier = env.controller.dossiers[enclave.enclave_id]
        assert dossier.console_tail[-1] == "about to touch the shared buffer"

    def test_render_contains_the_story(self, crashed):
        env, enclave = crashed
        report = env.controller.dossiers[enclave.enclave_id].render()
        assert "FAULT DOSSIER" in report
        assert "ept_violation" in report
        assert "0xc80000000" in report  # the faulting gpa (50 GiB)
        assert "console" in report

    def test_dossier_survives_reclamation(self, crashed):
        """Resources go back to the host, but the evidence stays."""
        env, enclave = crashed
        from repro.linuxhost.host import LINUX_OWNER

        assert env.host.is_pristine()
        assert enclave.enclave_id in env.controller.dossiers

    def test_each_crash_gets_own_dossier(self, env):
        ids = []
        for i in range(2):
            enclave = env.launch(LAYOUT, CovirtConfig.memory_only(), f"e{i}")
            with pytest.raises(EnclaveFaultError):
                enclave.port.read(enclave.assignment.core_ids[0], 50 * GiB, 8)
            ids.append(enclave.enclave_id)
        assert set(ids) <= set(env.controller.dossiers)
        assert len(set(ids)) == 2
