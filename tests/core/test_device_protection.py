"""Device MMIO protection: the NIC-ring corruption scenario."""

import pytest

from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.pisces.enclave import EnclaveState

GiB = 1 << 30
LAYOUT = Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})


@pytest.fixture
def env():
    return CovirtEnvironment()


class TestNicDevice:
    def test_nic_works_at_boot(self, env):
        nic = env.host.nic
        assert nic.check_ring_integrity()
        assert nic.transmit(1500)
        assert nic.receive()
        assert nic.stats.tx_packets == 1

    def test_mmio_window_never_offlined_into_enclaves(self, env):
        """Enclave creation can never be handed the device window."""
        enclave = env.launch(LAYOUT, None)
        for region in enclave.assignment.regions:
            assert not region.overlaps(env.host.nic.window)

    def test_window_excluded_from_enclave_epts(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        ctx = enclave.virt_context
        assert not ctx.ept.table.is_mapped(env.host.nic.window.start)


class TestMmioCorruption:
    def test_native_enclave_breaks_the_hosts_nic(self, env):
        """Without Covirt, a single stray co-kernel write kills a device
        the *host* depends on."""
        enclave = env.launch(LAYOUT, None)
        bsp = enclave.assignment.core_ids[0]
        nic = env.host.nic
        assert nic.transmit(64)
        # A wild pointer lands in the TX descriptor ring.
        enclave.port.write(bsp, nic.window.start + 8, b"\xff" * 16)
        assert not nic.transmit(64)  # driver detects corrupt rings
        assert nic.stats.ring_errors > 0
        assert enclave.state is EnclaveState.RUNNING  # nothing stopped it

    def test_covirt_contains_the_same_bug(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        bsp = enclave.assignment.core_ids[0]
        nic = env.host.nic
        with pytest.raises(EnclaveFaultError):
            enclave.port.write(bsp, nic.window.start + 8, b"\xff" * 16)
        assert enclave.state is EnclaveState.FAILED
        assert nic.check_ring_integrity()  # the device never saw it
        assert nic.transmit(64)

    def test_nic_survives_many_contained_attacks(self, env):
        nic = env.host.nic
        for i in range(3):
            attacker = env.launch(LAYOUT, CovirtConfig.memory_only(), f"a{i}")
            with pytest.raises(EnclaveFaultError):
                attacker.port.write(
                    attacker.assignment.core_ids[0], nic.window.start, b"\x00" * 8
                )
        assert nic.check_ring_integrity()
        assert env.host.is_pristine()
