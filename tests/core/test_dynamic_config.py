"""Dynamic reconfiguration: the controller's ordering protocol.

These tests exercise the paper's central mechanism — asynchronous
configuration updates with map-before-notify / unmap-then-flush
ordering — including the stale-TLB window that makes the flush command
necessary.
"""

import pytest

from repro.core.commands import CommandType
from repro.core.controller import CovirtIoctl
from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.pisces.enclave import EnclaveState

GiB = 1 << 30
MiB = 1 << 20

LAYOUT = Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})


@pytest.fixture
def env():
    return CovirtEnvironment()


@pytest.fixture
def pair(env):
    owner = env.launch(LAYOUT, CovirtConfig.memory_only(), "owner")
    attacher = env.launch(LAYOUT, CovirtConfig.memory_only(), "attacher")
    return env, owner, attacher


class TestMemoryHotplug:
    def test_hot_add_maps_ept_before_kernel_notification(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        ctx = enclave.virt_context
        observed = []
        original = enclave.kernel.memory_hotplug_add

        def spy(region):
            # By the time the co-kernel hears about the memory, the EPT
            # mapping must already exist.
            observed.append(ctx.ept.table.is_mapped(region.start))
            return original(region)

        enclave.kernel.memory_hotplug_add = spy
        env.mcp.kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        assert observed == [True]

    def test_hot_add_usable_immediately(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        region = env.mcp.kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        bsp = enclave.assignment.core_ids[0]
        enclave.kernel.touch(bsp, region.start, 8, write=True)
        assert enclave.state is EnclaveState.RUNNING

    def test_hot_remove_unmaps_and_flushes(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        ctx = enclave.virt_context
        region = env.mcp.kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        bsp = enclave.assignment.core_ids[0]
        enclave.kernel.touch(bsp, region.start, 8)  # warm the TLB
        assert env.machine.core(bsp).tlb.contains_translation_for(region.start)
        flushes_before = ctx.aggregate_counters().tlb_flushes
        env.mcp.kmod.remove_memory(enclave.enclave_id, region)
        assert not ctx.ept.table.is_mapped(region.start)
        assert ctx.aggregate_counters().tlb_flushes >= flushes_before + 2
        assert not env.machine.core(bsp).tlb.contains_translation_for(region.start)

    def test_stale_tlb_window_without_flush_is_a_real_hole(self, env):
        """Demonstrates *why* the flush command exists: unmap the EPT by
        hand (no command) and a warm TLB still translates."""
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        ctx = enclave.virt_context
        region = env.mcp.kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        bsp = enclave.assignment.core_ids[0]
        enclave.kernel.touch(bsp, region.start, 8)
        # Rogue unmap without the flush command:
        ctx.ept.unmap_region(region)
        enclave.port.read(bsp, region.start, 8)  # still works — the hole
        assert enclave.state is EnclaveState.RUNNING
        # Now flush, as the real protocol would:
        env.controller.issue_memory_update(ctx)
        with pytest.raises(EnclaveFaultError):
            enclave.port.read(bsp, region.start, 8)

    def test_buggy_cleanup_plus_covirt_contains(self, env):
        """The paper's stale-mapping anecdote, end to end through
        Pisces hot-remove."""
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        region = env.mcp.kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        enclave.kernel.buggy_cleanup = True
        env.mcp.kmod.remove_memory(enclave.enclave_id, region)
        bsp = enclave.assignment.core_ids[0]
        assert enclave.kernel.memmap.contains(region.start)  # stale belief
        with pytest.raises(EnclaveFaultError):
            enclave.kernel.touch(bsp, region.start, 8)
        assert enclave.state is EnclaveState.FAILED
        assert env.host.alive and env.host.verify_integrity()

    def test_buggy_cleanup_without_covirt_corrupts_host(self, env):
        enclave = env.launch(LAYOUT, None)
        region = env.mcp.kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        enclave.kernel.buggy_cleanup = True
        env.mcp.kmod.remove_memory(enclave.enclave_id, region)
        bsp = enclave.assignment.core_ids[0]
        # The kernel happily writes through its stale map into memory the
        # host has already reclaimed.
        enclave.kernel.touch(bsp, region.start, 8, write=True)
        assert enclave.state is EnclaveState.RUNNING
        assert env.machine.memory.read(region.start, 8) == b"\xab" * 8
        from repro.linuxhost.host import LINUX_OWNER

        assert env.machine.memory.owner_of(region.start) == LINUX_OWNER


class TestXememIntegration:
    def test_attach_maps_attacher_ept(self, pair):
        env, owner, attacher = pair
        task = owner.kernel.spawn("p", mem_bytes=2 * MiB)
        seg = env.mcp.xemem.make(
            owner.enclave_id, "buf", task.slices[0].start, 2 * MiB
        )
        actx = attacher.virt_context
        assert not actx.ept.table.is_mapped(seg.start)
        env.mcp.xemem.attach(attacher.enclave_id, seg.segid)
        assert actx.ept.table.is_mapped(seg.start)
        # And the attacher can genuinely touch it under protection.
        attacher.kernel.touch(attacher.assignment.core_ids[0], seg.start, 8)

    def test_detach_unmaps_and_faults_after(self, pair):
        env, owner, attacher = pair
        task = owner.kernel.spawn("p", mem_bytes=2 * MiB)
        seg = env.mcp.xemem.make(
            owner.enclave_id, "buf", task.slices[0].start, 2 * MiB
        )
        env.mcp.xemem.attach(attacher.enclave_id, seg.segid)
        core = attacher.assignment.core_ids[0]
        attacher.kernel.touch(core, seg.start, 8)
        env.mcp.xemem.detach(attacher.enclave_id, seg.segid)
        with pytest.raises(EnclaveFaultError):
            attacher.port.read(core, seg.start, 8)

    def test_stale_segment_scenario_contained(self, pair):
        """Section V's XEMEM cleanup bug with Covirt on: the enclave
        holding stale state dies; owner, host, everyone else lives."""
        env, owner, attacher = pair
        task = owner.kernel.spawn("p", mem_bytes=2 * MiB)
        seg = env.mcp.xemem.make(
            owner.enclave_id, "buf", task.slices[0].start, 2 * MiB
        )
        env.mcp.xemem.attach(attacher.enclave_id, seg.segid)
        core = attacher.assignment.core_ids[0]
        attacher.kernel.touch(core, seg.start, 8)  # warm TLB, to be nasty
        env.mcp.xemem.force_remove_buggy(seg.segid)
        with pytest.raises(EnclaveFaultError):
            attacher.kernel.touch(core, seg.start, 8)
        assert attacher.state is EnclaveState.FAILED
        assert owner.state is EnclaveState.RUNNING
        assert env.host.alive


class TestCommandPath:
    def test_ping_through_nmi_doorbell(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        answered = env.mcp.kmod.ioctl(CovirtIoctl.PING, enclave.enclave_id)
        assert answered == len(enclave.assignment.core_ids)
        counters = enclave.virt_context.aggregate_counters()
        assert counters.commands_serviced >= answered

    def test_nmi_exits_accounted(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        env.mcp.kmod.ioctl(CovirtIoctl.PING, enclave.enclave_id)
        counters = enclave.virt_context.aggregate_counters()
        assert counters.exits["exception_or_nmi"] >= 1

    def test_terminate_command(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        ctx = enclave.virt_context
        env.controller.issue_command(ctx, CommandType.TERMINATE)
        assert enclave.state is EnclaveState.FAILED

    def test_status_ioctl(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.memory_ipi())
        status = env.mcp.kmod.ioctl(CovirtIoctl.STATUS, enclave.enclave_id)
        assert status["protected"]
        assert status["ipi_mode"] == "posted"
        assert status["ept_mapped_bytes"] == enclave.assignment.total_memory
        native = env.launch(LAYOUT, None, "n")
        assert not env.mcp.kmod.ioctl(CovirtIoctl.STATUS, native.enclave_id)[
            "protected"
        ]

    def test_counters_ioctl_rejects_native(self, env):
        native = env.launch(LAYOUT, None)
        with pytest.raises(KeyError):
            env.mcp.kmod.ioctl(CovirtIoctl.COUNTERS, native.enclave_id)


class TestTeardown:
    def test_covirt_private_memory_returned(self, env):
        from repro.linuxhost.host import LINUX_OWNER

        before = env.host.owner_summary()[LINUX_OWNER]
        enclave = env.launch(LAYOUT, CovirtConfig.full())
        env.mcp.shutdown_enclave(enclave.enclave_id)
        assert env.host.owner_summary()[LINUX_OWNER] == before
        assert env.controller.context_for(enclave.enclave_id) is None

    def test_synchronous_update_ablation_pauses_cores(self):
        env = CovirtEnvironment(synchronous_updates=True)
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        ctx = enclave.virt_context
        before = ctx.aggregate_counters().commands_serviced
        env.mcp.kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        # In synchronous mode even a grow-only change interrupted every
        # core; the asynchronous design (default) would not.
        assert ctx.aggregate_counters().commands_serviced > before

    def test_async_grant_does_not_interrupt_guest(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        ctx = enclave.virt_context
        before = ctx.aggregate_counters().commands_serviced
        env.mcp.kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        assert ctx.aggregate_counters().commands_serviced == before
