"""Covirt protection features, exercised through booted enclaves.

These are the tests that make the paper's protection claims concrete:
each feature is driven through the virtualized access port of a real
(simulated) enclave, with the native port as the control group.
"""

import pytest

from repro.core.controller import CovirtController
from repro.core.execution import VirtualizedAccessPort
from repro.core.faults import EnclaveFaultError, FaultKind
from repro.core.features import CovirtConfig, Feature, IpiMode
from repro.harness.env import CovirtEnvironment, Layout
from repro.hw.apic import DeliveryMode
from repro.hw.interrupts import ExceptionVector
from repro.hw.ioports import RTC_INDEX
from repro.hw.msr import MSR
from repro.kitten.syscalls import Syscall
from repro.linuxhost.host import HostPanic
from repro.pisces.enclave import EnclaveState, NativeAccessPort
from repro.vmx.vapic import VapicMode

GiB = 1 << 30
MiB = 1 << 20

LAYOUT = Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})


@pytest.fixture
def env():
    return CovirtEnvironment()


def launch(env, config, name="e"):
    return env.launch(LAYOUT, config, name=name)


class TestBootTransparency:
    def test_protected_enclave_boots_normally(self, env):
        enclave = launch(env, CovirtConfig.full())
        assert enclave.state is EnclaveState.RUNNING
        assert isinstance(enclave.port, VirtualizedAccessPort)
        assert enclave.kernel.console[0].startswith("Kitten booting")

    def test_native_enclave_unchanged(self, env):
        enclave = launch(env, None)
        assert isinstance(enclave.port, NativeAccessPort)
        assert enclave.virt_context is None

    def test_kernel_sees_same_boot_params_either_way(self, env):
        protected = launch(env, CovirtConfig.full(), "p")
        native = launch(env, None, "n")
        assert (
            protected.kernel.params.core_ids
            == protected.assignment.core_ids
        )
        assert len(protected.kernel.params.regions) == len(
            native.kernel.params.regions
        )

    def test_cpuid_identical_native_vs_guest(self, env):
        """Zero abstraction: the guest sees the real processor."""
        protected = launch(env, CovirtConfig.full(), "p")
        native = launch(env, None, "n")
        pc = protected.assignment.core_ids[0]
        nc = native.assignment.core_ids[0]
        for leaf in (0, 1, 0xB):
            guest = protected.port.cpuid(pc, leaf)
            host = native.port.cpuid(nc, leaf)
            # APIC ids differ per core; mask them out of leaf 1.
            if leaf == 1:
                guest = (guest[0], 0, guest[2], guest[3])
                host = (host[0], 0, host[2], host[3])
            if leaf == 0xB:
                guest = guest[:3]
                host = host[:3]
            assert guest == host

    def test_vm_entries_counted(self, env):
        enclave = launch(env, CovirtConfig.full())
        for core_id in enclave.assignment.core_ids:
            assert env.machine.core(core_id).vm_entries == 1

    def test_hypervisor_private_memory_not_in_ept(self, env):
        enclave = launch(env, CovirtConfig.full())
        ctx = enclave.virt_context
        assert not ctx.ept.table.is_mapped(ctx.private_region.start)

    def test_ept_is_identity_of_assignment(self, env):
        enclave = launch(env, CovirtConfig.memory_only())
        ctx = enclave.virt_context
        assert ctx.ept.table.is_identity
        assert ctx.ept.mapped_bytes == enclave.assignment.total_memory


class TestMemoryProtection:
    def test_out_of_enclave_access_terminates(self, env):
        enclave = launch(env, CovirtConfig.memory_only())
        bsp = enclave.assignment.core_ids[0]
        with pytest.raises(EnclaveFaultError) as exc:
            enclave.port.read(bsp, 40 * GiB, 8)
        assert exc.value.fault.kind is FaultKind.EPT_VIOLATION
        assert enclave.state is EnclaveState.FAILED

    def test_native_out_of_enclave_access_corrupts_silently(self, env):
        """The control group: without Covirt the same bug scribbles on
        host memory and nothing notices until the canary check."""
        enclave = launch(env, None)
        bsp = enclave.assignment.core_ids[0]
        zone1 = env.machine.topology.zones[1]
        canary = zone1.mem_start + 16 * 4096
        enclave.port.write(bsp, canary, b"\x00" * 8)
        assert enclave.state is EnclaveState.RUNNING  # nothing stopped it
        assert not env.host.verify_integrity()

    def test_without_memory_feature_access_passes(self, env):
        enclave = launch(env, CovirtConfig.none())
        bsp = enclave.assignment.core_ids[0]
        # No EPT: the access is unchecked (and dangerous) — covirt-none
        # deliberately provides no memory protection.
        enclave.port.read(bsp, 40 * GiB, 8)
        assert enclave.state is EnclaveState.RUNNING

    def test_in_enclave_access_fine(self, env):
        enclave = launch(env, CovirtConfig.memory_only())
        bsp = enclave.assignment.core_ids[0]
        addr = enclave.assignment.regions[0].start + 2 * MiB
        enclave.port.write(bsp, addr, b"covirt")
        assert enclave.port.read(bsp, addr, 6) == b"covirt"

    def test_fault_reclaims_resources_and_spares_host(self, env):
        from repro.linuxhost.host import LINUX_OWNER

        before = env.host.owner_summary()[LINUX_OWNER]
        enclave = launch(env, CovirtConfig.memory_only())
        bsp = enclave.assignment.core_ids[0]
        with pytest.raises(EnclaveFaultError):
            enclave.port.read(bsp, 40 * GiB, 8)
        assert env.host.alive and env.host.verify_integrity()
        assert env.host.owner_summary()[LINUX_OWNER] == before
        assert env.controller.fault_log[-1].enclave_id == enclave.enclave_id

    def test_sibling_enclave_survives(self, env):
        victim = launch(env, CovirtConfig.memory_only(), "victim")
        sibling = launch(env, CovirtConfig.memory_only(), "sibling")
        with pytest.raises(EnclaveFaultError):
            victim.port.read(victim.assignment.core_ids[0], 40 * GiB, 8)
        assert sibling.state is EnclaveState.RUNNING
        addr = sibling.assignment.regions[0].start + 2 * MiB
        sibling.port.read(sibling.assignment.core_ids[0], addr, 8)


class TestIpiProtection:
    def test_unwhitelisted_ipi_dropped(self, env):
        enclave = launch(env, CovirtConfig.memory_ipi())
        bsp = enclave.assignment.core_ids[0]
        host_core = min(env.host.online_cores)
        delivered_before = len(env.machine.core(host_core).apic.delivered())
        ok = enclave.port.send_ipi(bsp, host_core, 200)
        assert not ok
        assert len(env.machine.core(host_core).apic.delivered()) == delivered_before
        ctx = enclave.virt_context
        assert ctx.whitelist.dropped[-1].msg.vector == 200
        assert enclave.state is EnclaveState.RUNNING  # drop, not terminate

    def test_granted_ipi_forwarded(self, env):
        enclave = launch(env, CovirtConfig.memory_ipi())
        ctx = enclave.virt_context
        channel = env.mcp.channels[enclave.enclave_id]
        grant = channel.to_host_grant
        ok = enclave.port.send_ipi(
            enclave.assignment.core_ids[0], grant.dest_core, grant.vector
        )
        assert ok
        assert ctx.aggregate_counters().ipis_forwarded >= 1

    def test_native_errant_ipi_hits_victim(self, env):
        """Control group: a native enclave can spoof interrupts at
        anyone."""
        attacker = launch(env, None)
        victim = launch(env, CovirtConfig.none(), "victim")
        vcore = victim.assignment.core_ids[0]
        attacker.port.send_ipi(attacker.assignment.core_ids[0], vcore, 150)
        assert 150 in {i.vector for i in victim.kernel.irq_log[vcore]}

    def test_guest_nmi_transmission_always_denied(self, env):
        enclave = launch(env, CovirtConfig.memory_ipi())
        ok = enclave.port.send_ipi(
            enclave.assignment.core_ids[0], 0, 2, DeliveryMode.NMI
        )
        assert not ok

    def test_whitelist_follows_vector_revocation(self, env):
        enclave = launch(env, CovirtConfig.memory_ipi())
        ctx = enclave.virt_context
        grant = env.mcp.vectors.allocate(
            dest_core=min(env.host.online_cores),
            dest_enclave_id=0,
            allowed_senders={enclave.enclave_id},
        )
        assert (grant.dest_core, grant.vector) in ctx.whitelist.allowed_pairs()
        env.mcp.vectors.revoke(grant)
        assert (grant.dest_core, grant.vector) not in ctx.whitelist.allowed_pairs()

    def test_posted_mode_selected_on_capable_hardware(self, env):
        enclave = launch(env, CovirtConfig.memory_ipi())
        vmcs = next(iter(enclave.virt_context.vmcs.values()))
        assert vmcs.controls.vapic_mode is VapicMode.POSTED
        assert vmcs.pi_descriptor is not None

    def test_trap_mode_fallback(self, env):
        config = CovirtConfig(
            features=Feature.MEMORY | Feature.IPI,
            hw_has_posted_interrupts=False,
        )
        enclave = launch(env, config)
        vmcs = next(iter(enclave.virt_context.vmcs.values()))
        assert vmcs.controls.vapic_mode is VapicMode.TRAP

    def test_incoming_ipi_posted_without_exit(self, env):
        enclave = launch(env, CovirtConfig.memory_ipi())
        bsp = enclave.assignment.core_ids[0]
        ctx = enclave.virt_context
        exits_before = ctx.hypervisors[bsp].counters.exits["external_interrupt"]
        # Host doorbell into the enclave (granted at wiring time).
        env.mcp.channels[enclave.enclave_id].host_send("ping", None)
        assert ctx.hypervisors[bsp].counters.posted_deliveries >= 1
        assert (
            ctx.hypervisors[bsp].counters.exits["external_interrupt"]
            == exits_before
        )
        assert enclave.kernel.irq_log[bsp]  # the guest did receive it

    def test_incoming_ipi_exits_in_trap_mode(self, env):
        config = CovirtConfig(
            features=Feature.MEMORY | Feature.IPI,
            hw_has_posted_interrupts=False,
        )
        enclave = launch(env, config)
        bsp = enclave.assignment.core_ids[0]
        ctx = enclave.virt_context
        env.mcp.channels[enclave.enclave_id].host_send("ping", None)
        assert ctx.hypervisors[bsp].counters.exits["external_interrupt"] >= 1


class TestMsrProtection:
    def test_sensitive_write_denied_and_logged(self, env):
        enclave = launch(env, CovirtConfig.full())
        bsp = enclave.assignment.core_ids[0]
        before = env.machine.core(bsp).msrs.peek(MSR.IA32_APIC_BASE)
        enclave.port.wrmsr(bsp, MSR.IA32_APIC_BASE, 0xDEAD000)
        assert env.machine.core(bsp).msrs.peek(MSR.IA32_APIC_BASE) == before
        assert enclave.virt_context.denied_msr_writes[-1][1] == MSR.IA32_APIC_BASE

    def test_benign_msr_passes_through_without_exit(self, env):
        enclave = launch(env, CovirtConfig.full())
        bsp = enclave.assignment.core_ids[0]
        ctx = enclave.virt_context
        exits_before = ctx.aggregate_counters().exits["msr_write"]
        enclave.port.wrmsr(bsp, MSR.IA32_FS_BASE, 0x7000)
        assert enclave.port.rdmsr(bsp, MSR.IA32_FS_BASE) == 0x7000
        assert ctx.aggregate_counters().exits["msr_write"] == exits_before

    def test_trapped_read_emulated_with_real_value(self, env):
        enclave = launch(env, CovirtConfig.full())
        bsp = enclave.assignment.core_ids[0]
        value = enclave.port.rdmsr(bsp, MSR.IA32_APIC_BASE)
        assert value == env.machine.core(bsp).msrs.peek(MSR.IA32_APIC_BASE)
        assert enclave.virt_context.aggregate_counters().exits["msr_read"] >= 1

    def test_native_sensitive_write_goes_through(self, env):
        enclave = launch(env, None)
        bsp = enclave.assignment.core_ids[0]
        enclave.port.wrmsr(bsp, MSR.IA32_APIC_BASE, 0xDEAD000)
        assert env.machine.core(bsp).msrs.peek(MSR.IA32_APIC_BASE) == 0xDEAD000

    def test_msr_feature_off_means_no_filtering(self, env):
        enclave = launch(env, CovirtConfig.memory_only())
        bsp = enclave.assignment.core_ids[0]
        enclave.port.wrmsr(bsp, MSR.IA32_APIC_BASE, 0xDEAD000)
        assert env.machine.core(bsp).msrs.peek(MSR.IA32_APIC_BASE) == 0xDEAD000


class TestIoProtection:
    def test_host_port_write_swallowed(self, env):
        enclave = launch(env, CovirtConfig.full())
        bsp = enclave.assignment.core_ids[0]
        before = env.machine.ioports.peek(RTC_INDEX)
        enclave.port.io_out(bsp, RTC_INDEX, 0x8F)
        assert env.machine.ioports.peek(RTC_INDEX) == before
        assert enclave.virt_context.denied_io[-1][1] == RTC_INDEX

    def test_host_port_read_floats_high(self, env):
        enclave = launch(env, CovirtConfig.full())
        bsp = enclave.assignment.core_ids[0]
        env.machine.ioports.write(RTC_INDEX, 0x42)
        assert enclave.port.io_in(bsp, RTC_INDEX) == 0xFF

    def test_native_port_write_lands(self, env):
        enclave = launch(env, None)
        bsp = enclave.assignment.core_ids[0]
        enclave.port.io_out(bsp, RTC_INDEX, 0x8F)
        assert env.machine.ioports.peek(RTC_INDEX) == 0x8F


class TestExceptionContainment:
    def test_double_fault_contained_with_feature(self, env):
        enclave = launch(env, CovirtConfig.full())
        bsp = enclave.assignment.core_ids[0]
        with pytest.raises(EnclaveFaultError) as exc:
            enclave.port.raise_exception(bsp, ExceptionVector.DOUBLE_FAULT)
        assert exc.value.fault.kind is FaultKind.ABORT_EXCEPTION
        assert env.host.alive

    def test_double_fault_contained_even_without_feature(self, env):
        """VMX architecture: a guest triple fault always exits."""
        enclave = launch(env, CovirtConfig.none())
        bsp = enclave.assignment.core_ids[0]
        with pytest.raises(EnclaveFaultError) as exc:
            enclave.port.raise_exception(bsp, ExceptionVector.DOUBLE_FAULT)
        assert exc.value.fault.kind is FaultKind.TRIPLE_FAULT
        assert env.host.alive

    def test_native_double_fault_kills_the_node(self, env):
        enclave = launch(env, None)
        bsp = enclave.assignment.core_ids[0]
        with pytest.raises(HostPanic):
            enclave.port.raise_exception(bsp, ExceptionVector.DOUBLE_FAULT)
        assert not env.host.alive

    def test_page_fault_is_guests_problem(self, env):
        enclave = launch(env, CovirtConfig.full())
        bsp = enclave.assignment.core_ids[0]
        enclave.port.raise_exception(bsp, ExceptionVector.PAGE_FAULT)
        assert enclave.state is EnclaveState.RUNNING


class TestEmulatedInstructions:
    def test_xsetbv_emulated(self, env):
        enclave = launch(env, CovirtConfig.full())
        bsp = enclave.assignment.core_ids[0]
        assert enclave.port.xsetbv(bsp, 0x7)
        counters = enclave.virt_context.aggregate_counters()
        assert counters.exits["xsetbv"] == 1

    def test_hlt_parks_the_core(self, env):
        enclave = launch(env, CovirtConfig.full())
        bsp = enclave.assignment.core_ids[0]
        enclave.port.hlt(bsp)
        assert env.machine.core(bsp).halted
        counters = enclave.virt_context.aggregate_counters()
        assert counters.exits["hlt"] == 1
        # HLT is not a fault: the enclave is still alive.
        assert enclave.state is EnclaveState.RUNNING

    def test_interrupt_wakes_halted_core(self, env):
        enclave = launch(env, CovirtConfig.full())
        bsp = enclave.assignment.core_ids[0]
        enclave.port.hlt(bsp)
        assert env.machine.core(bsp).halted
        # The channel doorbell is the canonical wake-up.
        env.mcp.channels[enclave.enclave_id].host_send("wake", None)
        assert not env.machine.core(bsp).halted
