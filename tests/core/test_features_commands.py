"""Covirt feature configuration and the shared-memory command queue."""

import pytest

from repro.core.commands import (
    Command,
    CommandQueue,
    CommandType,
    QueueFull,
    SLOT_SIZE,
)
from repro.core.features import CovirtConfig, EVALUATION_CONFIGS, Feature, IpiMode
from repro.hw.memory import PAGE_SIZE, PhysicalMemory


class TestFeatures:
    def test_none_has_nothing(self):
        config = CovirtConfig.none()
        assert not config.has(Feature.MEMORY)
        assert not config.has(Feature.IPI)

    def test_memory_only_includes_exceptions(self):
        config = CovirtConfig.memory_only()
        assert config.has(Feature.MEMORY)
        assert config.has(Feature.EXCEPTIONS)
        assert not config.has(Feature.IPI)

    def test_full(self):
        config = CovirtConfig.full()
        for feature in (Feature.MEMORY, Feature.IPI, Feature.MSR, Feature.IOPORT):
            assert config.has(feature)

    def test_auto_ipi_mode_follows_hardware(self):
        assert CovirtConfig(hw_has_posted_interrupts=True).effective_ipi_mode is (
            IpiMode.POSTED
        )
        assert CovirtConfig(hw_has_posted_interrupts=False).effective_ipi_mode is (
            IpiMode.TRAP
        )

    def test_posted_downgrades_without_hardware(self):
        config = CovirtConfig(
            ipi_mode=IpiMode.POSTED, hw_has_posted_interrupts=False
        )
        assert config.effective_ipi_mode is IpiMode.TRAP

    def test_trap_honored(self):
        config = CovirtConfig(ipi_mode=IpiMode.TRAP)
        assert config.effective_ipi_mode is IpiMode.TRAP

    def test_labels(self):
        assert CovirtConfig.none().label() == "covirt-none"
        assert CovirtConfig.memory_only().label() == "covirt-mem"
        assert CovirtConfig.memory_ipi().label() == "covirt-mem+ipi"

    def test_evaluation_sweep_shape(self):
        labels = [label for label, _ in EVALUATION_CONFIGS]
        assert labels == ["native", "covirt-none", "covirt-mem", "covirt-mem+ipi"]
        assert EVALUATION_CONFIGS[0][1] is None


@pytest.fixture
def queue():
    memory = PhysicalMemory(4 * PAGE_SIZE)
    return CommandQueue(memory, 0, capacity=4), memory


class TestCommandQueue:
    def test_enqueue_dequeue_fifo(self, queue):
        q, _ = queue
        q.enqueue(CommandType.PING)
        q.enqueue(CommandType.MEMORY_UPDATE, arg0=7)
        first = q.dequeue()
        second = q.dequeue()
        assert first.type is CommandType.PING
        assert second.type is CommandType.MEMORY_UPDATE
        assert second.arg0 == 7
        assert q.dequeue() is None

    def test_pending_count(self, queue):
        q, _ = queue
        assert q.pending() == 0
        q.enqueue(CommandType.PING)
        assert q.pending() == 1
        q.dequeue()
        assert q.pending() == 0

    def test_queue_full(self, queue):
        q, _ = queue
        for _ in range(4):
            q.enqueue(CommandType.PING)
        with pytest.raises(QueueFull):
            q.enqueue(CommandType.PING)

    def test_completion_flag_roundtrip(self, queue):
        q, _ = queue
        cmd = q.enqueue(CommandType.MEMORY_UPDATE)
        assert not q.is_completed(cmd)
        consumed = q.dequeue()
        q.mark_completed(consumed)
        assert q.is_completed(cmd)

    def test_wraparound(self, queue):
        q, _ = queue
        for i in range(10):  # capacity is 4: forces wrap
            cmd = q.enqueue(CommandType.PING)
            got = q.dequeue()
            assert got.seq == cmd.seq
            q.mark_completed(got)

    def test_state_lives_in_physical_memory(self, queue):
        """The ring is real memory: a second view over the same bytes
        sees the same commands (the controller/hypervisor share it)."""
        q, memory = queue
        q.enqueue(CommandType.TERMINATE, arg0=99)
        mirror = CommandQueue.__new__(CommandQueue)
        mirror.memory = memory
        mirror.base = 0
        mirror.capacity = 4
        mirror._seq = 0
        cmd = mirror.dequeue()
        assert cmd.type is CommandType.TERMINATE
        assert cmd.arg0 == 99

    def test_pack_unpack_roundtrip(self):
        cmd = Command(CommandType.VMCS_RELOAD, seq=5, arg0=1, arg1=2)
        packed = cmd.pack(completed=True)
        assert len(packed) == SLOT_SIZE
        clone, completed = Command.unpack(packed)
        assert clone == cmd
        assert completed

    def test_corrupt_slot_detected(self):
        with pytest.raises(ValueError):
            Command.unpack(b"\x00" * SLOT_SIZE)

    def test_must_fit_one_page(self):
        memory = PhysicalMemory(4 * PAGE_SIZE)
        with pytest.raises(ValueError):
            CommandQueue(memory, 0, capacity=100)
