"""NUMA topology."""

import pytest

from repro.hw.numa import LOCAL_DISTANCE, REMOTE_DISTANCE, NumaTopology, NumaZone

GiB = 1 << 30


class TestNumaZone:
    def test_window(self):
        zone = NumaZone(0, 0, GiB, (0, 1))
        assert zone.window == (0, GiB)
        assert zone.contains_addr(0)
        assert not zone.contains_addr(GiB)

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            NumaZone(0, 100, GiB, (0,))
        with pytest.raises(ValueError):
            NumaZone(0, 0, GiB + 5, (0,))


class TestNumaTopology:
    def test_symmetric_construction(self):
        topo = NumaTopology.symmetric(2, 6, GiB)
        assert topo.num_zones == 2
        assert topo.num_cores == 12
        assert topo.total_memory == 2 * GiB
        assert topo.zones[1].core_ids == tuple(range(6, 12))

    def test_zone_of_core(self):
        topo = NumaTopology.symmetric(2, 6, GiB)
        assert topo.zone_of_core(0) == 0
        assert topo.zone_of_core(11) == 1
        with pytest.raises(KeyError):
            topo.zone_of_core(12)

    def test_zone_of_addr(self):
        topo = NumaTopology.symmetric(2, 2, GiB)
        assert topo.zone_of_addr(0) == 0
        assert topo.zone_of_addr(GiB) == 1
        with pytest.raises(KeyError):
            topo.zone_of_addr(2 * GiB)

    def test_distances(self):
        topo = NumaTopology.symmetric(2, 2, GiB)
        assert topo.distance(0, 0) == LOCAL_DISTANCE
        assert topo.distance(0, 1) == REMOTE_DISTANCE
        with pytest.raises(KeyError):
            topo.distance(0, 2)

    def test_is_local(self):
        topo = NumaTopology.symmetric(2, 2, GiB)
        assert topo.is_local(0, 100)
        assert not topo.is_local(0, GiB + 100)
        assert topo.is_local(2, GiB + 100)

    def test_rejects_duplicate_cores(self):
        zones = [
            NumaZone(0, 0, GiB, (0, 1)),
            NumaZone(1, GiB, GiB, (1, 2)),
        ]
        with pytest.raises(ValueError):
            NumaTopology(zones)

    def test_rejects_sparse_zone_ids(self):
        zones = [NumaZone(1, 0, GiB, (0,))]
        with pytest.raises(ValueError):
            NumaTopology(zones)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            NumaTopology([])

    def test_all_core_ids_sorted(self):
        topo = NumaTopology.symmetric(3, 2, GiB)
        assert topo.all_core_ids == list(range(6))
