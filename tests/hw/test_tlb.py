"""TLB: functional caching semantics and the analytic miss model."""

import pytest

from repro.hw.memory import PAGE_SIZE, PAGE_SIZE_1G, PAGE_SIZE_2M
from repro.hw.tlb import AccessPattern, Tlb, TlbEntry, estimate_miss_rate


def entry(page: int, size: int = PAGE_SIZE) -> TlbEntry:
    return TlbEntry(virt_page=page * size, phys_page=page * size, page_size=size)


class TestTlbFunctional:
    def test_miss_then_hit(self):
        tlb = Tlb(capacity=8)
        assert tlb.lookup(0x1000) is None
        tlb.insert(entry(1))
        assert tlb.lookup(0x1000) is not None
        assert tlb.lookup(0x1FFF) is not None  # same page
        assert tlb.stats.hits == 2
        assert tlb.stats.misses == 1

    def test_large_page_entry_covers_range(self):
        tlb = Tlb()
        tlb.insert(TlbEntry(0, 0, PAGE_SIZE_2M))
        assert tlb.lookup(PAGE_SIZE_2M - 1) is not None
        assert tlb.lookup(PAGE_SIZE_2M) is None

    def test_lru_eviction(self):
        tlb = Tlb(capacity=2)
        tlb.insert(entry(1))
        tlb.insert(entry(2))
        tlb.lookup(0x1000)  # touch page 1 → page 2 becomes LRU
        tlb.insert(entry(3))
        assert tlb.contains_translation_for(0x1000)
        assert not tlb.contains_translation_for(0x2000)
        assert tlb.contains_translation_for(0x3000)

    def test_flush_all(self):
        tlb = Tlb()
        tlb.insert(entry(1))
        tlb.flush_all()
        assert len(tlb) == 0
        assert tlb.stats.flushes == 1

    def test_invalidate_range(self):
        tlb = Tlb()
        for page in range(4):
            tlb.insert(entry(page))
        dropped = tlb.invalidate_range(PAGE_SIZE, 3 * PAGE_SIZE)
        assert dropped == 2
        assert tlb.contains_translation_for(0)
        assert not tlb.contains_translation_for(PAGE_SIZE)
        assert tlb.contains_translation_for(3 * PAGE_SIZE)

    def test_contains_probe_has_no_side_effects(self):
        tlb = Tlb()
        tlb.insert(entry(1))
        before = (tlb.stats.hits, tlb.stats.misses)
        tlb.contains_translation_for(0x1000)
        tlb.contains_translation_for(0x9000)
        assert (tlb.stats.hits, tlb.stats.misses) == before

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Tlb(capacity=0)

    def test_stale_entry_survives_until_flush(self):
        """The protection-hole window Covirt's flush command closes."""
        tlb = Tlb()
        tlb.insert(entry(5))
        # ... the EPT mapping for page 5 is removed elsewhere ...
        assert tlb.lookup(5 * PAGE_SIZE) is not None  # still translates!
        tlb.flush_all()
        assert tlb.lookup(5 * PAGE_SIZE) is None


class TestMissModel:
    def test_sequential_is_nearly_free(self):
        rate = estimate_miss_rate(1 << 30, AccessPattern.SEQUENTIAL)
        assert rate < 0.01

    def test_random_within_reach_is_cheap(self):
        rate = estimate_miss_rate(1 << 20, AccessPattern.RANDOM)
        assert rate < 0.01

    def test_random_beyond_reach_misses_mostly(self):
        rate = estimate_miss_rate(256 << 20, AccessPattern.RANDOM)
        assert rate > 0.9

    def test_random_rate_monotone_in_footprint(self):
        rates = [
            estimate_miss_rate(fp, AccessPattern.RANDOM)
            for fp in (1 << 22, 1 << 24, 1 << 26, 1 << 28)
        ]
        assert rates == sorted(rates)

    def test_large_pages_extend_reach(self):
        small = estimate_miss_rate(256 << 20, AccessPattern.RANDOM, PAGE_SIZE)
        large = estimate_miss_rate(
            256 << 20, AccessPattern.RANDOM, PAGE_SIZE_2M
        )
        assert large < small

    def test_sparse_gather_between_seq_and_random(self):
        fp = 512 << 20
        seq = estimate_miss_rate(fp, AccessPattern.SEQUENTIAL)
        sparse = estimate_miss_rate(fp, AccessPattern.SPARSE_GATHER)
        random = estimate_miss_rate(fp, AccessPattern.RANDOM)
        assert seq < sparse < random

    def test_zero_footprint(self):
        assert estimate_miss_rate(0, AccessPattern.RANDOM) == 0.0

    def test_strided_follows_stride(self):
        fine = estimate_miss_rate(
            1 << 28, AccessPattern.STRIDED, stride_bytes=8
        )
        coarse = estimate_miss_rate(
            1 << 28, AccessPattern.STRIDED, stride_bytes=4096
        )
        assert fine < coarse
