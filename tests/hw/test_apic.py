"""Local APIC and IPI routing through the machine fabric."""

import pytest

from repro.hw.apic import DeliveryMode, IpiMessage, LocalApic
from repro.hw.interrupts import Interrupt, InterruptKind, NMI_VECTOR
from repro.hw.machine import Machine, MachineConfig


@pytest.fixture
def machine():
    return Machine(MachineConfig.small())


class TestIpiMessage:
    def test_fixed_mode_vector_range(self):
        with pytest.raises(ValueError):
            IpiMessage(0, 1, 5)  # exception-range vector
        with pytest.raises(ValueError):
            IpiMessage(0, 1, 256)
        IpiMessage(0, 1, 48)  # fine

    def test_nmi_mode_ignores_vector_range(self):
        msg = IpiMessage(0, 1, 2, DeliveryMode.NMI)
        irq = msg.as_interrupt()
        assert irq.kind is InterruptKind.NMI
        assert irq.vector == NMI_VECTOR
        assert irq.source_core == 0

    def test_fixed_as_interrupt(self):
        irq = IpiMessage(2, 3, 100).as_interrupt()
        assert irq.kind is InterruptKind.IPI
        assert irq.vector == 100


class TestDelivery:
    def test_route_ipi_delivers_to_dest_apic(self, machine):
        machine.core(0).apic.write_icr(1, 64)
        target = machine.core(1).apic
        assert 64 in target.pending
        assert target.stats.ipis_received == 1
        assert machine.core(0).apic.stats.ipis_sent == 1

    def test_misrouted_ipi_recorded_not_crashing(self, machine):
        ok = machine.route_ipi(IpiMessage(0, 99, 64))
        assert not ok
        assert len(machine.misrouted_ipis) == 1

    def test_delivery_hook_invoked(self, machine):
        seen = []
        machine.core(1).apic.delivery_hook = seen.append
        machine.core(0).apic.write_icr(1, 77)
        assert len(seen) == 1
        assert seen[0].vector == 77

    def test_nmi_sets_pending_flag(self, machine):
        machine.core(0).apic.write_icr(1, 2, DeliveryMode.NMI)
        target = machine.core(1).apic
        assert target.nmi_pending
        assert target.stats.nmis_received == 1
        target.ack_nmi()
        assert not target.nmi_pending

    def test_ack_clears_pending(self, machine):
        machine.core(0).apic.write_icr(1, 64)
        machine.core(1).apic.ack(64)
        assert 64 not in machine.core(1).apic.pending

    def test_unattached_apic_rejects_send(self):
        apic = LocalApic(0)
        with pytest.raises(RuntimeError):
            apic.write_icr(1, 64)

    def test_broadcast(self, machine):
        sent = machine.broadcast_ipi(IpiMessage(0, 0, 99))
        assert sent == machine.num_cores - 1
        for core in machine.cores[1:]:
            assert 99 in core.apic.pending
        assert 99 not in machine.core(0).apic.pending


class TestTimer:
    def test_masked_by_default(self, machine):
        apic = machine.core(0).apic
        assert apic.timer_ticks_during(10**9) == 0

    def test_tick_counting(self, machine):
        apic = machine.core(0).apic
        apic.configure_timer(1000)
        assert apic.timer_ticks_during(10_500) == 10

    def test_bad_period_rejected(self, machine):
        with pytest.raises(ValueError):
            machine.core(0).apic.configure_timer(0)

    def test_timer_delivery_counts_separately(self, machine):
        apic = machine.core(0).apic
        apic.deliver(Interrupt(48, InterruptKind.TIMER))
        assert apic.stats.timer_ticks == 1
        assert apic.stats.ipis_received == 0


class TestMachine:
    def test_paper_testbed_shape(self):
        machine = Machine(MachineConfig.paper_testbed())
        assert machine.num_cores == 12
        assert machine.topology.num_zones == 2
        assert machine.memory.size == 64 << 30

    def test_cores_wired(self, machine):
        for core in machine.cores:
            assert core.apic is not None
            assert core.msrs is not None
            assert core.tlb is not None

    def test_elapse_advances_idle_cores(self, machine):
        machine.elapse(5000)
        assert machine.clock.now == 5000
        for core in machine.cores:
            assert core.read_tsc() >= 5000

    def test_elapse_fires_events(self, machine):
        fired = []
        machine.events.schedule(100, lambda: fired.append(machine.clock.now))
        machine.elapse(200)
        assert fired == [100]

    def test_core_lookup_bounds(self, machine):
        with pytest.raises(KeyError):
            machine.core(machine.num_cores)

    def test_cores_in_zone(self, machine):
        zone0 = machine.cores_in_zone(0)
        assert all(c.zone == 0 for c in zone0)
        assert len(zone0) == machine.config.cores_per_zone

    def test_reset(self, machine):
        machine.core(0).apic.write_icr(1, 64)
        machine.core(0).mode = None  # will be reset
        machine.reset()
        assert machine.core(1).apic.pending == set()
        assert machine.misrouted_ipis == []
