"""Clock and event-queue behaviour."""

import pytest

from repro.hw.clock import (
    CYCLES_PER_US,
    Clock,
    EventQueue,
    cycles_to_us,
    us_to_cycles,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_advance_returns_new_time(self):
        clock = Clock()
        assert clock.advance(100) == 100
        assert clock.now == 100

    def test_advance_accumulates(self):
        clock = Clock()
        clock.advance(10)
        clock.advance(15)
        assert clock.now == 25

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(start=-5)

    def test_advance_to_never_goes_backwards(self):
        clock = Clock(start=100)
        clock.advance_to(50)
        assert clock.now == 100
        clock.advance_to(200)
        assert clock.now == 200

    def test_float_cycles_truncate(self):
        clock = Clock()
        clock.advance(10.9)
        assert clock.now == 10


class TestConversions:
    def test_roundtrip(self):
        assert us_to_cycles(cycles_to_us(1_700_000)) == 1_700_000

    def test_one_us(self):
        assert us_to_cycles(1) == CYCLES_PER_US


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(30, lambda: fired.append("c"))
        queue.schedule(10, lambda: fired.append("a"))
        queue.schedule(20, lambda: fired.append("b"))
        queue.run_until(100)
        assert fired == ["a", "b", "c"]

    def test_ties_break_in_scheduling_order(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(10, lambda: fired.append(1))
        queue.schedule(10, lambda: fired.append(2))
        queue.run_until(10)
        assert fired == [1, 2]

    def test_clock_advances_to_each_event(self):
        clock = Clock()
        queue = EventQueue(clock)
        seen = []
        queue.schedule(25, lambda: seen.append(clock.now))
        queue.run_until(100)
        assert seen == [25]
        assert clock.now == 100

    def test_run_until_respects_deadline(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(50, lambda: fired.append("late"))
        assert queue.run_until(49) == 0
        assert fired == []
        assert len(queue) == 1

    def test_cancel(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        event = queue.schedule(10, lambda: fired.append("x"))
        EventQueue.cancel(event)
        queue.run_until(100)
        assert fired == []
        assert len(queue) == 0

    def test_cannot_schedule_in_past(self):
        clock = Clock(start=100)
        queue = EventQueue(clock)
        with pytest.raises(ValueError):
            queue.schedule(-1, lambda: None)
        with pytest.raises(ValueError):
            queue.schedule_at(50, lambda: None)

    def test_events_can_schedule_events(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []

        def chain():
            fired.append(clock.now)
            if len(fired) < 3:
                queue.schedule(10, chain)

        queue.schedule(10, chain)
        queue.run_until(100)
        assert fired == [10, 20, 30]

    def test_run_next(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(10, lambda: fired.append(1))
        assert queue.run_next() is True
        assert fired == [1]
        assert queue.run_next() is False

    def test_next_deadline(self):
        clock = Clock()
        queue = EventQueue(clock)
        assert queue.next_deadline() is None
        queue.schedule(42, lambda: None)
        assert queue.next_deadline() == 42
