"""Core, MSR file, and I/O port space behaviour."""

import pytest

from repro.hw.cpu import Core, CpuMode, host_cpuid
from repro.hw.ioports import HOST_OWNED_PORTS, IoPortError, IoPortSpace, SERIAL_COM1
from repro.hw.msr import MSR, MsrAccessError, MsrFile, SENSITIVE_MSRS


class TestCore:
    def test_initial_state(self):
        core = Core(3, zone=1)
        assert core.core_id == 3
        assert core.zone == 1
        assert core.mode is CpuMode.HOST
        assert core.read_tsc() == 0
        assert not core.halted

    def test_advance_and_tsc(self):
        core = Core(0, 0)
        core.advance(1_000)
        core.advance(500)
        assert core.read_tsc() == 1_500

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            Core(0, 0).advance(-1)

    def test_sync_tsc_never_backwards(self):
        core = Core(0, 0)
        core.advance(1000)
        core.sync_tsc(500)
        assert core.read_tsc() == 1000
        core.sync_tsc(2000)
        assert core.read_tsc() == 2000

    def test_halt_resume(self):
        core = Core(0, 0)
        core.halt()
        assert core.halted
        core.resume()
        assert not core.halted

    def test_reset_preserves_tsc_clears_state(self):
        core = Core(0, 0)
        core.advance(100)
        core.mode = CpuMode.GUEST
        core.halt()
        core.context = object()
        core.reset()
        assert core.mode is CpuMode.HOST
        assert not core.halted
        assert core.context is None
        # TSC is monotonic across warm resets on real parts.
        assert core.read_tsc() == 100


class TestHostCpuid:
    def test_vendor_leaf(self):
        eax, ebx, ecx, edx = host_cpuid(0, 0)
        assert ebx == 0x756E_6547  # "Genu"

    def test_apic_id_varies_by_core(self):
        _, ebx0, _, _ = host_cpuid(1, 0)
        _, ebx5, _, _ = host_cpuid(1, 5)
        assert ebx0 >> 24 == 0
        assert ebx5 >> 24 == 5

    def test_unknown_leaf_zeroes(self):
        assert host_cpuid(0x7F, 0) == (0, 0, 0, 0)


class TestMsrFile:
    def test_architectural_defaults(self):
        msrs = MsrFile(0)
        assert msrs.read(MSR.IA32_EFER) & 0x400  # LMA
        assert msrs.read(MSR.IA32_APIC_BASE) != 0

    def test_write_read_roundtrip(self):
        msrs = MsrFile(0)
        msrs.write(MSR.IA32_LSTAR, 0xFFFF8000_00001000)
        assert msrs.read(MSR.IA32_LSTAR) == 0xFFFF8000_00001000

    def test_unknown_msr_reads_zero(self):
        assert MsrFile(0).read(0x9999) == 0

    def test_access_log(self):
        msrs = MsrFile(0)
        msrs.write(MSR.IA32_FS_BASE, 42)
        msrs.read(MSR.IA32_FS_BASE)
        assert len(msrs.access_log) == 2
        assert msrs.access_log[0].is_write
        assert not msrs.access_log[1].is_write

    def test_rejects_bad_index_and_value(self):
        msrs = MsrFile(0)
        with pytest.raises(MsrAccessError):
            msrs.read(-1)
        with pytest.raises(MsrAccessError):
            msrs.write(0x10, 1 << 64)

    def test_sensitive_set_contents(self):
        assert MSR.IA32_APIC_BASE in SENSITIVE_MSRS
        assert MSR.IA32_FS_BASE not in SENSITIVE_MSRS

    def test_peek_does_not_log(self):
        msrs = MsrFile(0)
        msrs.peek(MSR.IA32_EFER)
        assert msrs.access_log == []

    def test_reset(self):
        msrs = MsrFile(0)
        msrs.write(MSR.IA32_LSTAR, 7)
        msrs.reset()
        assert msrs.peek(MSR.IA32_LSTAR) == 0
        assert msrs.access_log == []


class TestIoPortSpace:
    def test_floating_bus_reads_high(self):
        assert IoPortSpace().read(0x5000) == 0xFF

    def test_latched_write_read(self):
        ports = IoPortSpace()
        ports.write(0x80, 0xAB)
        assert ports.read(0x80) == 0xAB

    def test_device_handler(self):
        ports = IoPortSpace()
        state = {"value": 0x42}

        def handler(value, is_write, core):
            if is_write:
                state["value"] = value
            return state["value"]

        ports.register_device(SERIAL_COM1, handler)
        assert ports.read(SERIAL_COM1) == 0x42
        ports.write(SERIAL_COM1, 0x55)
        assert ports.read(SERIAL_COM1) == 0x55

    def test_out_of_range_port(self):
        ports = IoPortSpace()
        with pytest.raises(IoPortError):
            ports.read(0x10000)
        with pytest.raises(IoPortError):
            ports.write(-1, 0)

    def test_too_wide_value(self):
        with pytest.raises(IoPortError):
            IoPortSpace().write(0x80, 1 << 32)

    def test_access_log_records_core(self):
        ports = IoPortSpace()
        ports.write(0x80, 1, core_id=3)
        assert ports.access_log[-1].core_id == 3

    def test_host_owned_ports_include_platform_devices(self):
        assert SERIAL_COM1 in HOST_OWNED_PORTS
        assert 0x70 in HOST_OWNED_PORTS  # RTC
