"""Physical memory: regions, interval map, ownership, contents."""

import pytest

from repro.hw.memory import (
    FREE,
    IntervalMap,
    MemoryRegion,
    OwnershipError,
    PAGE_SIZE,
    PhysicalMemory,
    page_align_down,
    page_align_up,
)

MiB = 1 << 20


class TestAlignment:
    @pytest.mark.parametrize(
        "addr,down,up",
        [(0, 0, 0), (1, 0, PAGE_SIZE), (PAGE_SIZE, PAGE_SIZE, PAGE_SIZE),
         (PAGE_SIZE + 1, PAGE_SIZE, 2 * PAGE_SIZE)],
    )
    def test_page_align(self, addr, down, up):
        assert page_align_down(addr) == down
        assert page_align_up(addr) == up


class TestMemoryRegion:
    def test_basic_properties(self):
        region = MemoryRegion(0x10000, 0x4000, zone=1)
        assert region.end == 0x14000
        assert region.num_pages == 4
        assert region.zone == 1

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            MemoryRegion(0x100, PAGE_SIZE)
        with pytest.raises(ValueError):
            MemoryRegion(0, PAGE_SIZE + 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MemoryRegion(0, 0)

    def test_contains(self):
        region = MemoryRegion(0x1000, 0x1000)
        assert region.contains(0x1000)
        assert region.contains(0x1FFF)
        assert not region.contains(0x2000)
        assert region.contains_range(0x1000, 0x1000)
        assert not region.contains_range(0x1800, 0x1000)

    def test_overlaps(self):
        a = MemoryRegion(0x0, 0x2000)
        b = MemoryRegion(0x1000, 0x2000)
        c = MemoryRegion(0x2000, 0x1000)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_split(self):
        region = MemoryRegion(0x1000, 0x3000)
        left, right = region.split(0x1000)
        assert left == MemoryRegion(0x1000, 0x1000)
        assert right == MemoryRegion(0x2000, 0x2000)

    def test_split_rejects_bad_offsets(self):
        region = MemoryRegion(0x1000, 0x2000)
        for offset in (0, 0x2000, 0x100):
            with pytest.raises(ValueError):
                region.split(offset)

    def test_page_numbers(self):
        region = MemoryRegion(2 * PAGE_SIZE, 3 * PAGE_SIZE)
        assert list(region.page_numbers()) == [2, 3, 4]


class TestIntervalMap:
    def test_initial_state(self):
        imap = IntervalMap(0, 100, "x")
        assert imap.get(0) == "x"
        assert imap.get(99) == "x"
        assert len(imap) == 1

    def test_set_middle_splits(self):
        imap = IntervalMap(0, 100, "a")
        imap.set(20, 40, "b")
        assert [v for _, _, v in imap.intervals()] == ["a", "b", "a"]
        assert imap.get(19) == "a"
        assert imap.get(20) == "b"
        assert imap.get(39) == "b"
        assert imap.get(40) == "a"
        imap.check_invariants()

    def test_set_coalesces_neighbours(self):
        imap = IntervalMap(0, 100, "a")
        imap.set(20, 40, "b")
        imap.set(40, 60, "b")
        assert (20, 60, "b") in list(imap.intervals())
        imap.check_invariants()

    def test_overwrite_back_to_original_coalesces_fully(self):
        imap = IntervalMap(0, 100, "a")
        imap.set(20, 40, "b")
        imap.set(20, 40, "a")
        assert len(imap) == 1
        imap.check_invariants()

    def test_set_spanning_multiple_intervals(self):
        imap = IntervalMap(0, 100, "a")
        imap.set(10, 20, "b")
        imap.set(30, 40, "c")
        imap.set(5, 50, "d")
        assert imap.get(15) == "d"
        assert imap.get(35) == "d"
        assert imap.get(4) == "a"
        imap.check_invariants()

    def test_out_of_range_rejected(self):
        imap = IntervalMap(0, 100, "a")
        with pytest.raises(KeyError):
            imap.get(100)
        with pytest.raises(KeyError):
            imap.set(50, 150, "b")
        with pytest.raises(ValueError):
            imap.set(50, 50, "b")

    def test_uniform_value(self):
        imap = IntervalMap(0, 100, "a")
        imap.set(20, 40, "b")
        assert imap.uniform_value(0, 20) == "a"
        assert imap.uniform_value(20, 40) == "b"
        assert imap.uniform_value(10, 30) is None

    def test_find(self):
        imap = IntervalMap(0, 100, "a")
        imap.set(20, 40, "b")
        imap.set(60, 80, "b")
        assert imap.find("b") == [(20, 40), (60, 80)]

    def test_intervals_in_clips(self):
        imap = IntervalMap(0, 100, "a")
        imap.set(20, 40, "b")
        pieces = list(imap.intervals_in(30, 50))
        assert pieces == [(30, 40, "b"), (40, 50, "a")]


class TestPhysicalMemory:
    def test_initially_free(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        assert mem.owner_of(0) == FREE
        assert mem.total_owned(FREE) == 16 * PAGE_SIZE

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            PhysicalMemory(0)
        with pytest.raises(ValueError):
            PhysicalMemory(PAGE_SIZE + 1)

    def test_allocate_and_owner(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        region = mem.allocate(4 * PAGE_SIZE, "enclave:1")
        assert mem.owner_of(region.start) == "enclave:1"
        assert mem.total_owned("enclave:1") == 4 * PAGE_SIZE

    def test_allocate_respects_window(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        window = (8 * PAGE_SIZE, 16 * PAGE_SIZE)
        region = mem.allocate(2 * PAGE_SIZE, "x", within=window)
        assert region.start >= 8 * PAGE_SIZE

    def test_allocate_alignment(self):
        mem = PhysicalMemory(64 * PAGE_SIZE)
        mem.allocate(PAGE_SIZE, "pad")  # misalign the free pool
        region = mem.allocate(4 * PAGE_SIZE, "x", alignment=4 * PAGE_SIZE)
        assert region.start % (4 * PAGE_SIZE) == 0

    def test_allocate_exhaustion(self):
        mem = PhysicalMemory(4 * PAGE_SIZE)
        mem.allocate(4 * PAGE_SIZE, "x")
        with pytest.raises(OwnershipError):
            mem.allocate(PAGE_SIZE, "y")

    def test_transfer_checks_expected_owner(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        region = mem.allocate(4 * PAGE_SIZE, "a")
        with pytest.raises(OwnershipError):
            mem.transfer(region, "b", "c")
        mem.transfer(region, "a", "b")
        assert mem.owner_of(region.start) == "b"

    def test_double_release_impossible(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        region = mem.allocate(4 * PAGE_SIZE, "a")
        mem.release(region, "a")
        with pytest.raises(OwnershipError):
            mem.release(region, "a")

    def test_ownership_conservation(self):
        mem = PhysicalMemory(64 * PAGE_SIZE)
        regions = [mem.allocate(4 * PAGE_SIZE, f"own{i}") for i in range(5)]
        total = mem.total_owned(FREE) + sum(
            mem.total_owned(f"own{i}") for i in range(5)
        )
        assert total == 64 * PAGE_SIZE
        for i, region in enumerate(regions):
            mem.release(region, f"own{i}")
        assert mem.total_owned(FREE) == 64 * PAGE_SIZE

    def test_read_write_roundtrip(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        mem.write(100, b"hello world")
        assert mem.read(100, 11) == b"hello world"

    def test_unbacked_reads_zero(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        assert mem.read(0, 8) == b"\x00" * 8
        assert mem.resident_pages == 0

    def test_write_crossing_page_boundary(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        data = bytes(range(64))
        mem.write(PAGE_SIZE - 32, data)
        assert mem.read(PAGE_SIZE - 32, 64) == data
        assert mem.resident_pages == 2

    def test_u64_roundtrip(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        mem.write_u64(0x100, 0xDEADBEEF12345678)
        assert mem.read_u64(0x100) == 0xDEADBEEF12345678

    def test_out_of_range_access(self):
        mem = PhysicalMemory(4 * PAGE_SIZE)
        with pytest.raises(ValueError):
            mem.read(4 * PAGE_SIZE - 4, 8)
        with pytest.raises(ValueError):
            mem.write(4 * PAGE_SIZE, b"x")

    def test_release_drops_backing(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        region = mem.allocate(PAGE_SIZE, "a")
        mem.write(region.start, b"secret")
        assert mem.resident_pages == 1
        mem.release(region, "a")
        assert mem.resident_pages == 0
        assert mem.read(region.start, 6) == b"\x00" * 6

    def test_owned_by(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        r1 = mem.allocate(2 * PAGE_SIZE, "a")
        mem.allocate(2 * PAGE_SIZE, "b")
        r3 = mem.allocate(2 * PAGE_SIZE, "a")
        owned = mem.owned_by("a")
        assert len(owned) == 2
        assert owned[0].start == r1.start and owned[1].start == r3.start

    def test_fragmentation_churn(self):
        """Thousands of allocate/release cycles with mixed sizes must
        neither leak nor fragment the free pool irrecoverably."""
        from repro.fuzz.rng import named_stream

        rng = named_stream("memory-churn", 3)
        print(f"churn rng: {rng.describe()}")
        mem = PhysicalMemory(256 * PAGE_SIZE)
        live: list[tuple[MemoryRegion, str]] = []
        for step in range(2000):
            if live and (rng.random() < 0.5 or len(live) > 20):
                region, owner = live.pop(rng.randrange(len(live)))
                mem.release(region, owner)
            else:
                size = rng.choice([1, 2, 4, 8]) * PAGE_SIZE
                owner = f"o{step}"
                try:
                    live.append((mem.allocate(size, owner), owner))
                except OwnershipError:
                    pass
            mem.check_invariants()
        for region, owner in live:
            mem.release(region, owner)
        # After full release the pool coalesces back to one interval.
        assert mem.total_owned(FREE) == 256 * PAGE_SIZE
        assert mem.allocate(256 * PAGE_SIZE, "all").size == 256 * PAGE_SIZE
