"""Dedicated tests for hw/devices.py: the MMIO NIC victim device.

Enclave-facing containment of NIC-ring scribbles lives in
tests/core/test_device_protection.py; these tests cover the device
model itself — window placement and ownership, ring layout, and the
driver's corruption detection.
"""

from __future__ import annotations

import pytest

from repro.hw.devices import (
    DESC_MAGIC,
    MmioNic,
    RING_ENTRIES,
    _DESC,
    device_owner,
)
from repro.hw.machine import Machine, MachineConfig
from repro.hw.memory import PAGE_SIZE


@pytest.fixture
def machine() -> Machine:
    return Machine(MachineConfig.small())


@pytest.fixture
def nic(machine: Machine) -> MmioNic:
    return MmioNic(machine)


class TestWindowOwnership:
    def test_owner_label(self, nic):
        assert nic.owner == device_owner(nic.name) == f"device:{nic.name}"

    def test_window_is_one_page_in_zone0(self, machine, nic):
        zone0 = machine.topology.zones[0]
        assert nic.window.size == PAGE_SIZE
        assert nic.window.zone == zone0.zone_id
        assert zone0.mem_start <= nic.window.start < zone0.mem_end
        assert nic.window.start + nic.window.size <= zone0.mem_end


class TestRings:
    def test_rings_initialised_with_device_magic(self, machine, nic):
        for ring in ("tx", "rx"):
            for index in range(RING_ENTRIES):
                data = machine.memory.read(
                    nic._desc_addr(ring, index), _DESC.size
                )
                magic, length, addr = _DESC.unpack(data)
                assert magic == DESC_MAGIC
                assert length == 0 and addr == 0

    def test_tx_and_rx_rings_occupy_separate_halves(self, nic):
        tx_last = nic._desc_addr("tx", RING_ENTRIES - 1) + _DESC.size
        rx_first = nic._desc_addr("rx", 0)
        assert tx_last <= rx_first
        assert rx_first == nic.window.start + PAGE_SIZE // 2

    def test_transmit_wraps_around_the_ring(self, nic):
        for _ in range(RING_ENTRIES + 1):
            assert nic.transmit(64)
        assert nic.stats.tx_packets == RING_ENTRIES + 1
        assert nic.check_ring_integrity()


class TestCorruptionDetection:
    def test_healthy_device_moves_packets(self, nic):
        assert nic.check_ring_integrity()
        assert nic.transmit(1500)
        assert nic.receive()
        assert nic.stats.ring_errors == 0

    def test_scribble_on_descriptor_detected(self, machine, nic):
        machine.memory.write(nic._desc_addr("tx", 3), b"\x00" * _DESC.size)
        assert not nic.check_ring_integrity()
        assert nic.stats.ring_errors == 1

    def test_corrupt_rings_stop_traffic_in_both_directions(self, machine, nic):
        machine.memory.write(nic._desc_addr("rx", 0), b"\xff" * _DESC.size)
        tx_before, rx_before = nic.stats.tx_packets, nic.stats.rx_packets
        assert not nic.transmit(64)
        assert not nic.receive()
        assert nic.stats.tx_packets == tx_before
        assert nic.stats.rx_packets == rx_before
        assert nic.stats.ring_errors >= 2
