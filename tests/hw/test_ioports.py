"""Dedicated tests for hw/ioports.py: port-range device registration,
the I/O permission bitmap, and the end-to-end whitelist deny path
(errant OUTs to host-owned ports vanish under Covirt).
"""

from __future__ import annotations

import pytest

from repro.core.features import CovirtConfig, Feature
from repro.harness.env import CovirtEnvironment, Layout
from repro.hw.ioports import (
    HOST_OWNED_PORTS,
    IoPortError,
    IoPortSpace,
    PCI_CONFIG_ADDR,
    PCI_CONFIG_DATA,
    PORT_SPACE_SIZE,
    SERIAL_COM1,
)
from repro.vmx.io_bitmap import IoBitmap

GiB = 1 << 30
LAYOUT = Layout("1c/1n", {0: 1}, {0: GiB})


class TestPortRangeRegistration:
    def test_handler_registered_over_a_range(self):
        space = IoPortSpace()
        writes: list[tuple[int, int]] = []

        def make_handler(port: int):
            def handler(value: int, is_write: bool, core: int) -> int:
                if is_write:
                    writes.append((port, value))
                return port & 0xFF

            return handler

        for port in range(0x1F0, 0x1F8):  # a classic 8-port device window
            space.register_device(port, make_handler(port))
        assert space.read(0x1F3) == 0xF3
        space.write(0x1F0, 0xAB)
        assert writes == [(0x1F0, 0xAB)]
        # Neighbouring ports stay plain latches.
        assert space.read(0x1F8) == 0xFF

    def test_registration_outside_space_rejected(self):
        space = IoPortSpace()
        with pytest.raises(IoPortError):
            space.register_device(PORT_SPACE_SIZE, lambda v, w, c: 0)

    def test_handler_ports_bypass_the_latch(self):
        space = IoPortSpace()
        space.register_device(0x80, lambda v, w, c: 0x42)
        space.write(0x80, 7)
        assert space.peek(0x80) == 0xFF  # never latched
        assert space.read(0x80) == 0x42

    def test_reset_clears_latches_and_log(self):
        space = IoPortSpace()
        space.write(0x100, 5)
        space.reset()
        assert space.peek(0x100) == 0xFF
        assert space.access_log == []


class TestIoBitmap:
    def test_traps_everything_by_default(self):
        bitmap = IoBitmap(trap_by_default=True)
        assert bitmap.should_exit(SERIAL_COM1)
        assert bitmap.allowed_ports() == frozenset()

    def test_allow_range(self):
        bitmap = IoBitmap(trap_by_default=True)
        bitmap.allow_range(0x3F8, 0x3FF)
        assert not bitmap.should_exit(0x3FA)
        assert bitmap.should_exit(0x3F7)
        assert len(bitmap.allowed_ports()) == 8

    def test_trap_overrides_allow(self):
        bitmap = IoBitmap(trap_by_default=False)
        bitmap.trap(PCI_CONFIG_ADDR)
        assert bitmap.should_exit(PCI_CONFIG_ADDR)
        assert not bitmap.should_exit(PCI_CONFIG_DATA)
        bitmap.allow(PCI_CONFIG_ADDR)  # re-allowing un-traps
        assert not bitmap.should_exit(PCI_CONFIG_ADDR)

    def test_allow_all_never_exits(self):
        bitmap = IoBitmap.allow_all()
        assert not bitmap.should_exit(SERIAL_COM1)

    def test_out_of_range_port_rejected(self):
        bitmap = IoBitmap()
        with pytest.raises(ValueError):
            bitmap.should_exit(PORT_SPACE_SIZE)
        with pytest.raises(ValueError):
            bitmap.allow(-1)


class TestWhitelistDenyPath:
    """End to end: the VMX I/O bitmap closes the errant-OUT channel."""

    @pytest.fixture
    def env(self) -> CovirtEnvironment:
        return CovirtEnvironment()

    def test_denied_write_never_reaches_the_host_port(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.full(), name="guest")
        bsp = enclave.assignment.core_ids[0]
        before = env.machine.ioports.peek(SERIAL_COM1)
        enclave.port.io_out(bsp, SERIAL_COM1, 0x41)
        assert env.machine.ioports.peek(SERIAL_COM1) == before
        assert (bsp, SERIAL_COM1, 0x41, True) in enclave.virt_context.denied_io

    def test_denied_read_floats_high(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.full(), name="guest")
        bsp = enclave.assignment.core_ids[0]
        assert enclave.port.io_in(bsp, SERIAL_COM1) == 0xFF

    def test_host_owned_ports_all_trapped_by_default(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.full(), name="guest")
        bitmap = enclave.virt_context.io_bitmap
        assert all(bitmap.should_exit(p) for p in HOST_OWNED_PORTS)

    def test_without_ioport_feature_writes_pass_through(self, env):
        config = CovirtConfig(features=Feature.MEMORY)
        enclave = env.launch(LAYOUT, config, name="guest")
        bsp = enclave.assignment.core_ids[0]
        enclave.port.io_out(bsp, 0x200, 0x7)  # unowned scratch port
        assert env.machine.ioports.peek(0x200) == 0x7

    def test_denied_access_counts_an_io_exit(self, env):
        from repro.obs import metric_names

        enclave = env.launch(LAYOUT, CovirtConfig.full(), name="guest")
        bsp = enclave.assignment.core_ids[0]
        enclave.port.io_out(bsp, SERIAL_COM1, 1)
        exits = env.machine.obs.metrics.exit_counts_by_reason()
        assert exits.get("io_instruction", 0) == 1
        assert metric_names.EXITS in env.machine.obs.metrics
