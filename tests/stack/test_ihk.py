"""IHK/McKernel: the second co-kernel framework, native and protected.

These tests substantiate the paper's generalisation claim: Covirt
interposes on IHK through the identical seams it uses for Pisces, and
the protection semantics carry over unchanged.
"""

import pytest

from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment
from repro.ihk.mckernel import McKernel
from repro.ihk.module import IHK_ID_BASE, IhkError, IhkIoctl, IhkModule
from repro.kitten.syscalls import Syscall, SyscallError
from repro.pisces.enclave import EnclaveState

GiB = 1 << 30
MiB = 1 << 20


@pytest.fixture
def env():
    return CovirtEnvironment()


@pytest.fixture
def ihk(env):
    module = IhkModule(env.machine, env.host)
    env.controller.interpose_on(module)
    return module


def boot_instance(env, ihk, config=None):
    os_index = ihk.reserve({0: 1, 1: 1}, {0: GiB, 1: GiB})
    env.controller.launch_via(lambda: ihk.boot(os_index), config)
    return os_index, ihk.instance(os_index)


class TestLifecycle:
    def test_reserve_boot_destroy(self, env, ihk):
        os_index, enclave = boot_instance(env, ihk)
        assert enclave.state is EnclaveState.RUNNING
        assert isinstance(enclave.kernel, McKernel)
        assert enclave.enclave_id >= IHK_ID_BASE
        assert "McKernel booting" in enclave.kernel.console[0]
        ihk.destroy(os_index)
        assert env.host.is_pristine()

    def test_reserve_rolls_back_on_failure(self, env, ihk):
        with pytest.raises(IhkError):
            ihk.reserve({0: 99}, {0: GiB})
        assert env.host.is_pristine()

    def test_ioctl_abi(self, env, ihk):
        os_index = ihk.ioctl(IhkIoctl.RESERVE, ({0: 1}, {0: GiB}))
        ihk.ioctl(IhkIoctl.BOOT, os_index)
        assert ihk.ioctl(IhkIoctl.QUERY_STATUS, os_index) is EnclaveState.RUNNING
        ihk.ioctl(IhkIoctl.DESTROY, os_index)

    def test_coexists_with_pisces_enclaves(self, env, ihk):
        from repro.harness.env import Layout

        pisces = env.launch(
            Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB}),
            CovirtConfig.memory_only(),
            "pisces-side",
        )
        _os_index, mcos = boot_instance(env, ihk, CovirtConfig.memory_only())
        assert pisces.state is EnclaveState.RUNNING
        assert mcos.state is EnclaveState.RUNNING
        assert not set(pisces.assignment.core_ids) & set(
            mcos.assignment.core_ids
        )


class TestProxyProcess:
    def test_every_process_gets_a_host_twin(self, env, ihk):
        _idx, enclave = boot_instance(env, ihk)
        process = enclave.kernel.spawn_process("app", mem_bytes=MiB)
        assert process.proxy is not None
        assert process.proxy.mck_pid == process.pid
        assert process.proxy.covers(process.ranges[0][0], MiB)

    def test_delegation_through_proxy(self, env, ihk):
        _idx, enclave = boot_instance(env, ihk)
        kernel = enclave.kernel
        process = kernel.spawn_process("app")
        fd = kernel.syscall(process, Syscall.OPEN, "/etc/hostname")
        data = kernel.syscall(process, Syscall.READ, fd, 64)
        assert data == b"hobbes-node-0\n"
        assert process.proxy.delegations == 2

    def test_write_validates_replicated_buffer(self, env, ihk):
        _idx, enclave = boot_instance(env, ihk)
        kernel = enclave.kernel
        process = kernel.spawn_process("app", mem_bytes=MiB)
        addr = process.ranges[0][0]
        assert kernel.syscall(process, Syscall.WRITE, 1, addr, 16) == 16

    def test_correct_munmap_fails_delegation_cleanly(self, env, ihk):
        """With replica kept in sync, a use-after-unmap is rejected with
        EFAULT at the proxy — a clean, diagnosable error."""
        _idx, enclave = boot_instance(env, ihk)
        kernel = enclave.kernel
        process = kernel.spawn_process("app", mem_bytes=MiB)
        start, size = process.ranges[0]
        kernel.munmap_process(process, start, size, buggy=False)
        with pytest.raises(SyscallError):
            kernel.syscall(process, Syscall.WRITE, 1, start, 16)

    def test_replica_desync_is_silent_stale_state(self, env, ihk):
        """The IHK-flavoured stale-state bug: munmap that forgets the
        proxy twin leaves the replica covering freed memory, and the
        delegation *silently succeeds* on stale data — exactly the
        hard-to-diagnose class Section V describes."""
        _idx, enclave = boot_instance(env, ihk)
        kernel = enclave.kernel
        process = kernel.spawn_process("app", mem_bytes=MiB)
        start, size = process.ranges[0]
        kernel.munmap_process(process, start, size, buggy=True)
        assert not process.owns(start)  # the LWK freed it...
        assert process.proxy.covers(start, 16)  # ...the twin disagrees
        # The delegation goes through anyway: silent stale read.
        assert kernel.syscall(process, Syscall.WRITE, 1, start, 16) == 16

    def test_mckernel_handles_almost_nothing_locally(self, env, ihk):
        _idx, enclave = boot_instance(env, ihk)
        process = enclave.kernel.spawn_process("app")
        with pytest.raises(SyscallError):
            enclave.kernel.syscall(process, Syscall.MMAP, 4096)


class TestCovirtOnIhk:
    def test_protected_boot_is_transparent(self, env, ihk):
        _idx, enclave = boot_instance(env, ihk, CovirtConfig.memory_only())
        assert isinstance(enclave.kernel, McKernel)
        status = ihk.ioctl(200, enclave.enclave_id)  # COVIRT_STATUS
        assert status["protected"]
        assert status["ept_mapped_bytes"] == enclave.assignment.total_memory

    def test_wild_access_contained_and_reclaimed(self, env, ihk):
        os_index, enclave = boot_instance(env, ihk, CovirtConfig.memory_only())
        bsp = enclave.assignment.core_ids[0]
        with pytest.raises(EnclaveFaultError):
            enclave.port.read(bsp, 50 * GiB, 8)
        assert enclave.state is EnclaveState.FAILED
        assert env.host.alive and env.host.verify_integrity()
        assert env.host.is_pristine()
        assert enclave.enclave_id in env.controller.dossiers

    def test_pisces_survives_ihk_crash(self, env, ihk):
        from repro.harness.env import Layout

        pisces = env.launch(
            Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB}),
            CovirtConfig.memory_only(),
            "pisces-side",
        )
        _idx, mcos = boot_instance(env, ihk, CovirtConfig.memory_only())
        with pytest.raises(EnclaveFaultError):
            mcos.port.read(mcos.assignment.core_ids[0], 50 * GiB, 8)
        assert pisces.state is EnclaveState.RUNNING
        # And the Pisces enclave still works end to end.
        task = pisces.kernel.spawn("w", mem_bytes=4096)
        assert pisces.kernel.syscall(task, Syscall.GETPID) == task.tid

    def test_proxy_delegation_works_under_covirt(self, env, ihk):
        _idx, enclave = boot_instance(env, ihk, CovirtConfig.memory_only())
        kernel = enclave.kernel
        process = kernel.spawn_process("app", mem_bytes=MiB)
        addr = process.ranges[0][0]
        # The buffer read crosses the *protected* port.
        assert kernel.syscall(process, Syscall.WRITE, 1, addr, 8) == 8
