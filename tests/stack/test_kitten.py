"""Kitten LWK: memory map, scheduler, tasks, syscalls, IRQ handling."""

import pytest

from repro.hw.interrupts import Interrupt, InterruptKind
from repro.hw.machine import Machine, MachineConfig
from repro.kitten.kernel import GuestPageFault, HOUSEKEEPING_TICK_CYCLES
from repro.kitten.memmap import GuestMemoryMap, MemoryMapError
from repro.kitten.sched import Scheduler, SchedulerError
from repro.kitten.syscalls import Syscall, SyscallError
from repro.kitten.task import Task, TaskState
from repro.linuxhost.host import LinuxHost
from repro.pisces.kmod import PiscesKmod
from repro.pisces.resources import ResourceSpec

GiB = 1 << 30
MiB = 1 << 20
PAGE = 4096


@pytest.fixture
def kernel_env():
    machine = Machine(MachineConfig.paper_testbed())
    host = LinuxHost(machine)
    kmod = PiscesKmod(machine, host)
    enclave = kmod.create_enclave(
        ResourceSpec.evaluation_layout(2, 2, 2 * GiB, "k")
    )
    kmod.boot_enclave(enclave.enclave_id)
    return machine, kmod, enclave, enclave.kernel


class TestGuestMemoryMap:
    def test_add_remove_roundtrip(self):
        mm = GuestMemoryMap()
        mm.add(0x10000, 0x4000)
        assert mm.contains(0x10000)
        assert mm.contains(0x13FFF)
        mm.remove(0x10000, 0x4000)
        assert not mm.contains(0x10000)
        assert mm.total_bytes == 0

    def test_adjacent_ranges_merge(self):
        mm = GuestMemoryMap()
        mm.add(0, PAGE)
        mm.add(PAGE, PAGE)
        assert len(mm) == 1
        assert mm.contains(0, 2 * PAGE)

    def test_overlap_rejected(self):
        mm = GuestMemoryMap()
        mm.add(0, 2 * PAGE)
        with pytest.raises(MemoryMapError):
            mm.add(PAGE, 2 * PAGE)

    def test_partial_remove_splits(self):
        mm = GuestMemoryMap()
        mm.add(0, 4 * PAGE)
        mm.remove(PAGE, PAGE)
        assert mm.contains(0)
        assert not mm.contains(PAGE)
        assert mm.contains(2 * PAGE, 2 * PAGE)
        mm.check_invariants()

    def test_remove_not_present_rejected(self):
        mm = GuestMemoryMap()
        mm.add(0, PAGE)
        with pytest.raises(MemoryMapError):
            mm.remove(0, 2 * PAGE)

    def test_contains_across_gap_fails(self):
        mm = GuestMemoryMap()
        mm.add(0, PAGE)
        mm.add(2 * PAGE, PAGE)
        assert not mm.contains(0, 3 * PAGE)

    def test_unaligned_rejected(self):
        mm = GuestMemoryMap()
        with pytest.raises(MemoryMapError):
            mm.add(5, PAGE)
        with pytest.raises(MemoryMapError):
            mm.add(0, 0)


class TestScheduler:
    def make_task(self, tid):
        return Task(tid, f"t{tid}", enclave_id=1)

    def test_run_to_completion(self):
        sched = Scheduler([0])
        t1, t2 = self.make_task(1), self.make_task(2)
        sched.enqueue(t1, 0)
        sched.enqueue(t2, 0)
        assert sched.pick_next(0) is t1
        assert sched.pick_next(0) is t1  # no preemption
        t1.exit()
        sched.task_done(0)
        assert sched.pick_next(0) is t2

    def test_least_loaded_placement(self):
        sched = Scheduler([0, 1])
        sched.enqueue(self.make_task(1), 0)
        assert sched.least_loaded_core() == 1

    def test_killed_tasks_skipped(self):
        sched = Scheduler([0])
        t1, t2 = self.make_task(1), self.make_task(2)
        t1.kill()
        sched.enqueue(t1, 0)
        sched.enqueue(t2, 0)
        assert sched.pick_next(0) is t2

    def test_unknown_core_rejected(self):
        sched = Scheduler([0])
        with pytest.raises(SchedulerError):
            sched.enqueue(self.make_task(1), 5)

    def test_add_core(self):
        sched = Scheduler([0])
        sched.add_core(1)
        assert sched.core_ids == [0, 1]
        with pytest.raises(SchedulerError):
            sched.add_core(1)

    def test_empty_scheduler_rejected(self):
        with pytest.raises(SchedulerError):
            Scheduler([])


class TestKernel:
    def test_boot_parses_params_from_memory(self, kernel_env):
        _, _, enclave, kernel = kernel_env
        assert kernel.params.enclave_id == enclave.enclave_id
        assert kernel.console[0].startswith("Kitten booting")

    def test_kmalloc_contiguous_and_reserved(self, kernel_env):
        _, _, enclave, kernel = kernel_env
        chunk = kernel.kmalloc(MiB)
        first = enclave.assignment.regions[0]
        assert chunk.start >= first.start + (1 << 20)  # skips kernel image
        chunk2 = kernel.kmalloc(MiB)
        assert chunk2.start == chunk.start + MiB  # bump allocation

    def test_kmalloc_zone_preference(self, kernel_env):
        machine, _, enclave, kernel = kernel_env
        chunk = kernel.kmalloc(MiB, zone_pref=1)
        assert machine.topology.zone_of_addr(chunk.start) == 1

    def test_kmalloc_exhaustion(self, kernel_env):
        _, _, _, kernel = kernel_env
        with pytest.raises(SyscallError):
            kernel.kmalloc(100 * GiB)

    def test_touch_checks_memmap_first(self, kernel_env):
        _, _, enclave, kernel = kernel_env
        bsp = enclave.assignment.core_ids[0]
        with pytest.raises(GuestPageFault):
            kernel.touch(bsp, 63 * GiB, 8)

    def test_spawn_and_getpid(self, kernel_env):
        _, _, _, kernel = kernel_env
        task = kernel.spawn("app", mem_bytes=PAGE)
        assert kernel.syscall(task, Syscall.GETPID) == task.tid

    def test_write_console(self, kernel_env):
        _, _, _, kernel = kernel_env
        task = kernel.spawn("app")
        kernel.syscall(task, Syscall.WRITE, 1, "hello")
        assert "hello" in kernel.console
        with pytest.raises(SyscallError):
            kernel.syscall(task, Syscall.WRITE, 7, "nope")

    def test_mmap_allocates_to_task(self, kernel_env):
        _, _, _, kernel = kernel_env
        task = kernel.spawn("app")
        addr = kernel.syscall(task, Syscall.MMAP, 2 * PAGE)
        assert task.owns_addr(addr, 2 * PAGE)

    def test_exit_frees_core(self, kernel_env):
        _, _, _, kernel = kernel_env
        task = kernel.spawn("app", core_id=kernel.online_cores[0])
        kernel.sched.pick_next(task.bound_core)
        kernel.syscall(task, Syscall.EXIT, 3)
        assert task.state is TaskState.EXITED
        assert task.exit_code == 3

    def test_delegated_syscall_without_hobbes_fails(self, kernel_env):
        _, _, _, kernel = kernel_env
        kernel.hobbes_client = None
        task = kernel.spawn("app")
        with pytest.raises(SyscallError):
            kernel.syscall(task, Syscall.OPEN, "/etc/hostname")

    def test_unknown_syscall(self, kernel_env):
        _, _, _, kernel = kernel_env
        task = kernel.spawn("app")
        with pytest.raises(SyscallError):
            kernel.syscall(task, 424242)

    def test_user_access_segfault_kills_task(self, kernel_env):
        _, _, enclave, kernel = kernel_env
        task = kernel.spawn("app", mem_bytes=PAGE)
        bsp = enclave.assignment.core_ids[0]
        with pytest.raises(GuestPageFault):
            kernel.user_access(task, bsp, 0x100, 8, write=False)
        assert task.state is TaskState.KILLED

    def test_irq_dispatch_and_log(self, kernel_env):
        _, _, enclave, kernel = kernel_env
        bsp = enclave.assignment.core_ids[0]
        seen = []
        kernel.register_irq_handler(77, lambda core, irq: seen.append((core, irq.vector)))
        kernel.inject_interrupt(bsp, Interrupt(77, InterruptKind.IPI, source_core=1))
        assert seen == [(bsp, 77)]
        assert kernel.irq_log[bsp][-1].vector == 77

    def test_native_ipi_between_enclave_cores(self, kernel_env):
        machine, _, enclave, kernel = kernel_env
        c0, c1 = enclave.assignment.core_ids[:2]
        kernel.send_ipi(c0, c1, 99)
        assert kernel.irq_log[c1][-1].vector == 99

    def test_timer_configured_low_noise(self, kernel_env):
        machine, _, enclave, kernel = kernel_env
        for core_id in enclave.assignment.core_ids:
            apic = machine.core(core_id).apic
            assert apic.timer_period == HOUSEKEEPING_TICK_CYCLES

    def test_hotplug_remove_with_buggy_cleanup_keeps_stale_map(self, kernel_env):
        _, kmod, enclave, kernel = kernel_env
        region = kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        kernel.buggy_cleanup = True
        kmod.remove_memory(enclave.enclave_id, region)
        # The kernel still *believes* it owns the memory: the bug.
        assert kernel.memmap.contains(region.start)

    def test_shutdown_kills_tasks(self, kernel_env):
        _, _, _, kernel = kernel_env
        task = kernel.spawn("app")
        kernel.shutdown()
        assert task.state is TaskState.KILLED
        assert not kernel.running
