"""mOS: the extreme-integration co-kernel, native and under Covirt."""

import pytest

from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment
from repro.kitten.syscalls import Syscall, SyscallError
from repro.mos import MosError, MosLwk, MosStack
from repro.pisces.enclave import EnclaveState

GiB = 1 << 30
MiB = 1 << 20


@pytest.fixture
def env():
    return CovirtEnvironment()


@pytest.fixture
def mos(env):
    stack = MosStack(env.machine, env.host)
    env.controller.interpose_on(stack)
    return stack


def designate(env, mos, config=None):
    return env.controller.launch_via(
        lambda: mos.designate({0: 2}, {0: 2 * GiB}), config
    )


class TestDesignation:
    def test_boot_time_designation(self, env, mos):
        partition = designate(env, mos)
        assert partition.state is EnclaveState.RUNNING
        assert isinstance(partition.kernel, MosLwk)
        assert "mOS LWK online" in partition.kernel.console[0]

    def test_designation_is_once_only(self, env, mos):
        designate(env, mos)
        with pytest.raises(MosError):
            mos.designate({1: 1}, {1: GiB})

    def test_lwk_cores_are_tickless(self, env, mos):
        partition = designate(env, mos)
        for core_id in partition.assignment.core_ids:
            assert env.machine.core(core_id).apic.timer_period is None

    def test_shared_window_mapped_and_linux_owned(self, env, mos):
        from repro.linuxhost.host import LINUX_OWNER

        partition = designate(env, mos)
        window = mos.shared_window
        assert partition.kernel.pgtable.covers(window.start, window.size)
        # The window is genuinely *shared*: Linux still owns it.
        assert env.machine.memory.region_owner(window) == LINUX_OWNER


class TestEmbeddedSyscalls:
    def test_trampoline_not_channel(self, env, mos):
        """mOS delegation is a function call: orders cheaper than the
        Hobbes channel round trip (the integration payoff)."""
        from repro.mos.stack import MOS_SYSCALL_TRAMPOLINE_CYCLES
        from repro.perf.costs import DEFAULT_COSTS

        assert MOS_SYSCALL_TRAMPOLINE_CYCLES * 10 < DEFAULT_COSTS.channel_rtt
        partition = designate(env, mos)
        lwk = partition.kernel
        process = lwk.spawn_process("app")
        fd = lwk.syscall(process, Syscall.OPEN, "/etc/hostname")
        assert lwk.syscall(process, Syscall.READ, fd, 64) == b"hobbes-node-0\n"
        assert lwk.trampoline_cycles > 0

    def test_syscalls_touch_shared_kernel_state(self, env, mos):
        partition = designate(env, mos, CovirtConfig.memory_only())
        lwk = partition.kernel
        process = lwk.spawn_process("app")
        # The trampolined call reads the shared window through the
        # *protected* port — and is allowed to.
        lwk.syscall(process, Syscall.OPEN, "/etc/hostname")
        assert partition.state is EnclaveState.RUNNING


class TestCovirtOnMos:
    def test_protected_designation(self, env, mos):
        partition = designate(env, mos, CovirtConfig.memory_only())
        status = mos.ioctl(200, partition.enclave_id)
        assert status["protected"]
        # The EPT covers the partition *plus* the shared window — more
        # than the assignment, by exactly the window's size.
        ctx = env.controller.context_for(partition.enclave_id)
        assert (
            ctx.ept.mapped_bytes
            == partition.assignment.total_memory + mos.shared_window.size
        )

    def test_shared_window_access_allowed(self, env, mos):
        partition = designate(env, mos, CovirtConfig.memory_only())
        bsp = partition.assignment.core_ids[0]
        partition.kernel.touch(bsp, mos.shared_window.start, 8)
        assert partition.state is EnclaveState.RUNNING

    def test_linux_memory_outside_window_contained(self, env, mos):
        """High integration narrows, but does not erase, the boundary."""
        partition = designate(env, mos, CovirtConfig.memory_only())
        bsp = partition.assignment.core_ids[0]
        zone1 = env.machine.topology.zones[1]
        with pytest.raises(EnclaveFaultError):
            partition.port.read(bsp, zone1.mem_start + 16 * 4096, 8)
        assert partition.state is EnclaveState.FAILED
        assert env.host.alive and env.host.verify_integrity()

    def test_native_mos_fault_would_hit_linux(self, env, mos):
        partition = designate(env, mos)
        bsp = partition.assignment.core_ids[0]
        zone1 = env.machine.topology.zones[1]
        partition.port.write(bsp, zone1.mem_start + 16 * 4096, b"\x00" * 8)
        assert not env.host.verify_integrity()

    def test_fault_dossier_for_mos(self, env, mos):
        partition = designate(env, mos, CovirtConfig.memory_only())
        bsp = partition.assignment.core_ids[0]
        with pytest.raises(EnclaveFaultError):
            partition.port.read(bsp, 50 * GiB, 8)
        dossier = mos.ioctl(203, partition.enclave_id)
        assert dossier.fault.enclave_id == partition.enclave_id
