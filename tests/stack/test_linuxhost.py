"""Host OS: resource offlining, integrity canaries, panic semantics."""

import pytest

from repro.hw.machine import Machine, MachineConfig
from repro.hw.memory import OwnershipError, PAGE_SIZE
from repro.linuxhost.host import (
    HostPanic,
    LINUX_OWNER,
    LinuxHost,
    OFFLINE_OWNER,
)

MiB = 1 << 20


@pytest.fixture
def machine():
    return Machine(MachineConfig.small())


@pytest.fixture
def host(machine):
    return LinuxHost(machine)


class TestBoot:
    def test_linux_owns_everything_but_device_windows(self, machine, host):
        assert (
            machine.memory.total_owned(LINUX_OWNER)
            == machine.memory.size - host.nic.window.size
        )
        assert machine.memory.region_owner(host.nic.window) == host.nic.owner
        assert host.is_pristine()

    def test_all_cores_online(self, machine, host):
        assert host.online_cores == set(range(machine.num_cores))

    def test_integrity_ok_at_boot(self, host):
        assert host.verify_integrity()


class TestCoreOfflining:
    def test_offline_then_return(self, host):
        host.offline_cores([1, 2])
        assert host.online_cores.isdisjoint({1, 2})
        host.online_cores_return([1, 2])
        assert {1, 2} <= host.online_cores

    def test_cannot_offline_twice(self, host):
        host.offline_cores([1])
        with pytest.raises(ValueError):
            host.offline_cores([1])

    def test_boot_cpu_never_offlines(self, host):
        assert not host.can_offline(0)
        with pytest.raises(ValueError):
            host.offline_cores([0])

    def test_cannot_return_online_core(self, host):
        with pytest.raises(ValueError):
            host.online_cores_return([0])


class TestMemoryOfflining:
    def test_offline_moves_ownership(self, machine, host):
        region = host.offline_memory(4 * MiB, zone_id=0)
        assert machine.memory.region_owner(region) == OFFLINE_OWNER
        assert machine.topology.zone_of_addr(region.start) == 0

    def test_offline_respects_zone(self, machine, host):
        region = host.offline_memory(4 * MiB, zone_id=1)
        assert machine.topology.zone_of_addr(region.start) == 1

    def test_offline_avoids_reserved_pages(self, machine, host):
        region = host.offline_memory(4 * MiB, zone_id=0)
        zone = machine.topology.zones[0]
        assert region.start >= zone.mem_start + 64 * PAGE_SIZE

    def test_offline_exhaustion(self, machine, host):
        with pytest.raises(OwnershipError):
            host.offline_memory(machine.memory.size, zone_id=0)

    def test_return_restores_linux(self, machine, host):
        region = host.offline_memory(4 * MiB, zone_id=0)
        host.online_memory_return(region)
        assert machine.memory.region_owner(region) == LINUX_OWNER


class TestIntegrity:
    def test_corruption_detected(self, machine, host):
        # A rogue write to a host canary page.
        zone0 = machine.topology.zones[0]
        machine.memory.write_u64(zone0.mem_start + 16 * PAGE_SIZE, 0x1337)
        assert not host.verify_integrity()

    def test_panic_raises_and_marks_dead(self, host):
        with pytest.raises(HostPanic):
            host.panic("double fault in co-kernel")
        assert not host.alive


class TestModules:
    def test_load_unload(self, host):
        sentinel = object()
        host.load_module("pisces", sentinel)
        assert host.unload_module("pisces") is sentinel

    def test_duplicate_load_rejected(self, host):
        host.load_module("pisces", object())
        with pytest.raises(ValueError):
            host.load_module("pisces", object())
