"""Pisces: specs, boot params, enclave lifecycle, the ioctl ABI."""

import pytest

from repro.hw.machine import Machine, MachineConfig
from repro.hw.memory import MemoryRegion, PAGE_SIZE
from repro.linuxhost.host import LINUX_OWNER, LinuxHost
from repro.pisces.bootparams import BOOT_PARAMS_MAGIC, PiscesBootParams
from repro.pisces.enclave import EnclaveDead, EnclaveState, FaultRecord
from repro.pisces.kmod import PiscesError, PiscesIoctl, PiscesKmod
from repro.pisces.resources import ResourceSpec, enclave_owner

GiB = 1 << 30
MiB = 1 << 20


@pytest.fixture
def machine():
    return Machine(MachineConfig.paper_testbed())


@pytest.fixture
def host(machine):
    return LinuxHost(machine)


@pytest.fixture
def kmod(machine, host):
    return PiscesKmod(machine, host)


def spec(ncores=2, nzones=2, mem=2 * GiB):
    return ResourceSpec.evaluation_layout(ncores, nzones, mem, "t")


class TestResourceSpec:
    def test_evaluation_layout_splits_evenly(self):
        s = ResourceSpec.evaluation_layout(4, 2, 14 * GiB)
        assert s.cores_per_zone == {0: 2, 1: 2}
        assert s.total_cores == 4
        assert abs(s.total_memory - 14 * GiB) < 2 * PAGE_SIZE

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            ResourceSpec.evaluation_layout(3, 2, GiB)

    def test_needs_cores_and_memory(self):
        with pytest.raises(ValueError):
            ResourceSpec(cores_per_zone={0: 0}, mem_per_zone={0: GiB})
        with pytest.raises(ValueError):
            ResourceSpec(cores_per_zone={0: 1}, mem_per_zone={0: 0})


class TestBootParams:
    def test_pack_unpack_roundtrip(self):
        params = PiscesBootParams(
            enclave_id=7,
            core_ids=[0, 1, 6],
            regions=[MemoryRegion(0x100000, 0x200000, 1)],
            channel_addr=0xBEEF000,
        )
        clone = PiscesBootParams.unpack(params.pack())
        assert clone.enclave_id == 7
        assert clone.core_ids == [0, 1, 6]
        assert clone.regions == params.regions
        assert clone.channel_addr == 0xBEEF000

    def test_memory_roundtrip(self, machine):
        params = PiscesBootParams(1, [0], [MemoryRegion(0, PAGE_SIZE)])
        params.write_to(machine.memory, 0x5000)
        clone = PiscesBootParams.read_from(machine.memory, 0x5000)
        assert clone.enclave_id == 1
        assert clone.address == 0x5000

    def test_bad_magic_rejected(self):
        params = PiscesBootParams(1, [0], [MemoryRegion(0, PAGE_SIZE)])
        data = bytearray(params.pack())
        data[0] ^= 0xFF
        with pytest.raises(ValueError):
            PiscesBootParams.unpack(bytes(data))

    def test_magic_constant(self):
        assert BOOT_PARAMS_MAGIC == 0x50534345


class TestEnclaveLifecycle:
    def test_create_partitions_resources(self, machine, host, kmod):
        enclave = kmod.create_enclave(spec())
        assert enclave.state is EnclaveState.CREATED
        owner = enclave_owner(enclave.enclave_id)
        assert machine.memory.total_owned(owner) == enclave.assignment.total_memory
        for core_id in enclave.assignment.core_ids:
            assert core_id not in host.online_cores

    def test_cores_placed_per_zone(self, machine, kmod):
        enclave = kmod.create_enclave(spec(ncores=4))
        zones = [machine.core(c).zone for c in enclave.assignment.core_ids]
        assert zones.count(0) == 2 and zones.count(1) == 2

    def test_create_rolls_back_on_failure(self, machine, host, kmod):
        before = dict(host.owner_summary())
        online = set(host.online_cores)
        # Ask for more cores than a zone has.
        bad = ResourceSpec(cores_per_zone={0: 99}, mem_per_zone={0: GiB})
        with pytest.raises(PiscesError):
            kmod.create_enclave(bad)
        assert host.owner_summary() == before
        assert host.online_cores == online

    def test_boot_writes_params_and_runs_kernel(self, machine, kmod):
        enclave = kmod.create_enclave(spec())
        kmod.boot_enclave(enclave.enclave_id)
        assert enclave.state is EnclaveState.RUNNING
        assert enclave.kernel is not None
        assert enclave.kernel.params.enclave_id == enclave.enclave_id
        assert enclave.kernel.memmap.total_bytes == enclave.assignment.total_memory
        assert sorted(enclave.kernel.online_cores) == sorted(
            enclave.assignment.core_ids
        )

    def test_double_boot_rejected(self, kmod):
        enclave = kmod.create_enclave(spec())
        kmod.boot_enclave(enclave.enclave_id)
        with pytest.raises(PiscesError):
            kmod.boot_enclave(enclave.enclave_id)

    def test_destroy_returns_everything(self, machine, host, kmod):
        before = host.owner_summary()[LINUX_OWNER]
        enclave = kmod.create_enclave(spec())
        kmod.boot_enclave(enclave.enclave_id)
        kmod.destroy_enclave(enclave.enclave_id)
        assert enclave.state is EnclaveState.DESTROYED
        assert host.owner_summary()[LINUX_OWNER] == before
        assert len(host.online_cores) == machine.num_cores

    def test_two_enclaves_coexist(self, kmod):
        e1 = kmod.create_enclave(spec())
        e2 = kmod.create_enclave(spec())
        assert e1.enclave_id != e2.enclave_id
        assert not set(e1.assignment.core_ids) & set(e2.assignment.core_ids)
        for r1 in e1.assignment.regions:
            for r2 in e2.assignment.regions:
                assert not r1.overlaps(r2)


class TestMemoryHotplug:
    def test_add_memory_updates_kernel_map(self, kmod):
        enclave = kmod.create_enclave(spec())
        kmod.boot_enclave(enclave.enclave_id)
        before = enclave.kernel.memmap.total_bytes
        region = kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        assert enclave.kernel.memmap.total_bytes == before + region.size
        assert region in enclave.assignment.regions

    def test_remove_memory_full_path(self, machine, host, kmod):
        enclave = kmod.create_enclave(spec())
        kmod.boot_enclave(enclave.enclave_id)
        region = kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        kmod.remove_memory(enclave.enclave_id, region)
        assert not enclave.kernel.memmap.contains(region.start)
        assert machine.memory.region_owner(region) == LINUX_OWNER

    def test_remove_unassigned_region_rejected(self, kmod):
        enclave = kmod.create_enclave(spec())
        kmod.boot_enclave(enclave.enclave_id)
        with pytest.raises(PiscesError):
            kmod.remove_memory(
                enclave.enclave_id, MemoryRegion(0, PAGE_SIZE)
            )

    def test_hotplug_requires_running(self, kmod):
        enclave = kmod.create_enclave(spec())
        with pytest.raises(EnclaveDead):
            kmod.add_memory(enclave.enclave_id, MiB, 0)


class TestTermination:
    def test_terminate_parks_cores(self, machine, kmod):
        enclave = kmod.create_enclave(spec())
        kmod.boot_enclave(enclave.enclave_id)
        fault = FaultRecord("ept_violation", "test", 0, 0)
        kmod.terminate_enclave(enclave.enclave_id, fault)
        assert enclave.state is EnclaveState.FAILED
        assert enclave.fault is fault
        for core_id in enclave.assignment.core_ids:
            assert machine.core(core_id).halted

    def test_reclaim_requires_stopped(self, kmod):
        enclave = kmod.create_enclave(spec())
        kmod.boot_enclave(enclave.enclave_id)
        with pytest.raises(PiscesError):
            kmod.reclaim_enclave(enclave.enclave_id)


class TestIoctlAbi:
    def test_base_commands(self, kmod):
        enclave = kmod.ioctl(PiscesIoctl.CREATE_ENCLAVE, spec())
        kmod.ioctl(PiscesIoctl.BOOT_ENCLAVE, enclave.enclave_id)
        assert kmod.ioctl(PiscesIoctl.ENCLAVE_STATUS, enclave.enclave_id) is (
            EnclaveState.RUNNING
        )
        kmod.ioctl(PiscesIoctl.DESTROY_ENCLAVE, enclave.enclave_id)

    def test_unknown_command(self, kmod):
        with pytest.raises(PiscesError):
            kmod.ioctl(9999)

    def test_extension_registration(self, kmod):
        kmod.register_ioctl(250, lambda arg: arg * 2)
        assert kmod.ioctl(250, 21) == 42

    def test_extension_cannot_shadow_base(self, kmod):
        with pytest.raises(PiscesError):
            kmod.register_ioctl(100, lambda arg: None)

    def test_extension_cannot_double_register(self, kmod):
        kmod.register_ioctl(250, lambda arg: None)
        with pytest.raises(PiscesError):
            kmod.register_ioctl(250, lambda arg: None)
