"""XEMEM: segments, name service, attach/detach ordering."""

import pytest

from repro.hobbes.master import MasterControlProcess
from repro.hw.machine import Machine, MachineConfig
from repro.hw.memory import PAGE_SIZE
from repro.kitten.syscalls import Syscall
from repro.linuxhost.host import LinuxHost
from repro.pisces.resources import ResourceSpec
from repro.xemem.nameservice import NameService
from repro.xemem.segment import HOST_ENCLAVE_ID, Segment, SegmentError

GiB = 1 << 30
MiB = 1 << 20


@pytest.fixture
def stack():
    machine = Machine(MachineConfig.paper_testbed())
    host = LinuxHost(machine)
    mcp = MasterControlProcess(machine, host)
    e1 = mcp.launch_enclave(ResourceSpec.evaluation_layout(2, 2, 2 * GiB, "a"))
    e2 = mcp.launch_enclave(ResourceSpec.evaluation_layout(2, 2, 2 * GiB, "b"))
    return machine, mcp, e1, e2


class TestSegment:
    def test_alignment_enforced(self):
        with pytest.raises(SegmentError):
            Segment(1, "x", 1, 100, PAGE_SIZE)
        with pytest.raises(SegmentError):
            Segment(1, "x", 1, 0, 100)

    def test_attach_detach_bookkeeping(self):
        seg = Segment(1, "x", 1, 0, PAGE_SIZE)
        att = seg.attach_for(2)
        assert att.local_addr == 0  # identity
        with pytest.raises(SegmentError):
            seg.attach_for(2)  # double attach
        seg.detach_for(2)
        with pytest.raises(SegmentError):
            seg.detach_for(2)

    def test_dead_segment_rejects_attach(self):
        seg = Segment(1, "x", 1, 0, PAGE_SIZE)
        seg.alive = False
        with pytest.raises(SegmentError):
            seg.attach_for(2)


class TestNameService:
    def test_register_lookup(self):
        ns = NameService()
        seg = Segment(ns.allocate_segid(), "buf", 1, 0, PAGE_SIZE)
        ns.register(seg)
        assert ns.lookup("buf") is seg
        assert ns.by_segid(seg.segid) is seg

    def test_duplicate_name_rejected(self):
        ns = NameService()
        ns.register(Segment(ns.allocate_segid(), "buf", 1, 0, PAGE_SIZE))
        with pytest.raises(SegmentError):
            ns.register(Segment(ns.allocate_segid(), "buf", 1, 0, PAGE_SIZE))

    def test_unregister(self):
        ns = NameService()
        seg = Segment(ns.allocate_segid(), "buf", 1, 0, PAGE_SIZE)
        ns.register(seg)
        ns.unregister(seg.segid)
        assert not seg.alive
        with pytest.raises(SegmentError):
            ns.lookup("buf")

    def test_queries_by_owner_and_attacher(self):
        ns = NameService()
        seg = Segment(ns.allocate_segid(), "buf", 1, 0, PAGE_SIZE)
        ns.register(seg)
        seg.attach_for(2)
        assert ns.segments_owned_by(1) == [seg]
        assert ns.segments_attached_by(2) == [seg]
        assert ns.segments_owned_by(2) == []


class TestXememService:
    def test_make_requires_ownership(self, stack):
        _, mcp, e1, _ = stack
        with pytest.raises(SegmentError):
            mcp.xemem.make(e1.enclave_id, "bad", 63 * GiB, MiB)

    def test_full_attach_flow_updates_kernel_map(self, stack):
        _, mcp, e1, e2 = stack
        task = e1.kernel.spawn("p", mem_bytes=MiB)
        seg = mcp.xemem.make(e1.enclave_id, "buf", task.slices[0].start, MiB)
        assert not e2.kernel.memmap.contains(seg.start)
        mcp.xemem.attach(e2.enclave_id, seg.segid)
        assert e2.kernel.memmap.contains(seg.start, MiB)
        mcp.xemem.detach(e2.enclave_id, seg.segid)
        assert not e2.kernel.memmap.contains(seg.start)

    def test_get_by_name(self, stack):
        _, mcp, e1, _ = stack
        task = e1.kernel.spawn("p", mem_bytes=MiB)
        seg = mcp.xemem.make(e1.enclave_id, "named", task.slices[0].start, MiB)
        assert mcp.xemem.get("named") == seg.segid

    def test_host_side_attach_has_no_kernel(self, stack):
        _, mcp, e1, _ = stack
        task = e1.kernel.spawn("p", mem_bytes=MiB)
        seg = mcp.xemem.make(e1.enclave_id, "buf", task.slices[0].start, MiB)
        att = mcp.xemem.attach(HOST_ENCLAVE_ID, seg.segid)
        assert att.enclave_id == HOST_ENCLAVE_ID

    def test_remove_requires_detach(self, stack):
        _, mcp, e1, e2 = stack
        task = e1.kernel.spawn("p", mem_bytes=MiB)
        seg = mcp.xemem.make(e1.enclave_id, "buf", task.slices[0].start, MiB)
        mcp.xemem.attach(e2.enclave_id, seg.segid)
        with pytest.raises(SegmentError):
            mcp.xemem.remove(seg.segid)
        mcp.xemem.detach(e2.enclave_id, seg.segid)
        mcp.xemem.remove(seg.segid)

    def test_force_remove_leaves_stale_cokernel_state(self, stack):
        """The Section-V bug: host reclaims, co-kernel map keeps the
        stale range."""
        _, mcp, e1, e2 = stack
        task = e1.kernel.spawn("p", mem_bytes=MiB)
        seg = mcp.xemem.make(e1.enclave_id, "buf", task.slices[0].start, MiB)
        mcp.xemem.attach(e2.enclave_id, seg.segid)
        stale = mcp.xemem.force_remove_buggy(seg.segid)
        assert stale == [e2.enclave_id]
        assert e2.kernel.memmap.contains(seg.start)  # stale belief

    def test_attach_latency_grows_with_size(self, stack):
        machine, mcp, e1, e2 = stack
        task = e1.kernel.spawn("p", mem_bytes=64 * MiB)
        core = e2.assignment.core_ids[0]
        latencies = []
        for i, size in enumerate((MiB, 16 * MiB, 64 * MiB)):
            seg = mcp.xemem.make(
                e1.enclave_id, f"s{i}", task.slices[0].start, size
            )
            t0 = machine.core(core).read_tsc()
            mcp.xemem.attach(e2.enclave_id, seg.segid, core_hint=core)
            latencies.append(machine.core(core).read_tsc() - t0)
            mcp.xemem.detach(e2.enclave_id, seg.segid, core_hint=core)
            mcp.xemem.remove(seg.segid)
        assert latencies == sorted(latencies)

    def test_xemem_syscall_surface(self, stack):
        _, mcp, e1, e2 = stack
        ptask = e1.kernel.spawn("p", mem_bytes=MiB)
        segid = e1.kernel.syscall(
            ptask, Syscall.XEMEM_MAKE, "via-syscall", ptask.slices[0].start, MiB
        )
        ctask = e2.kernel.spawn("c")
        got = e2.kernel.syscall(ctask, Syscall.XEMEM_GET, "via-syscall")
        assert got == segid
        addr = e2.kernel.syscall(ctask, Syscall.XEMEM_ATTACH, segid)
        assert addr == ptask.slices[0].start
        assert segid in ctask.attachments
        # Cross-enclave data flow through user accesses.
        c0 = e1.assignment.core_ids[0]
        c1 = e2.assignment.core_ids[0]
        e1.kernel.user_access(ptask, c0, addr, 8, write=True)
        data = e2.kernel.user_access(ctask, c1, addr, 8, write=False)
        assert data == b"\xab" * 8
        e2.kernel.syscall(ctask, Syscall.XEMEM_DETACH, segid)
        assert segid not in ctask.attachments
