"""Nautilus aerokernel: the second co-kernel, native and under Covirt.

The point of these tests is the paper's generality claim: Covirt's boot
interposition and protection features do not know or care which
co-kernel is in the enclave.
"""

import pytest

from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.nautilus.kernel import FiberState, NautilusKernel
from repro.pisces.enclave import EnclaveState
from repro.pisces.resources import ResourceSpec

GiB = 1 << 30
MiB = 1 << 20


def nautilus_layout() -> Layout:
    return Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})


def nautilus_spec(layout: Layout) -> ResourceSpec:
    spec = layout.spec("aero")
    return ResourceSpec(
        cores_per_zone=spec.cores_per_zone,
        mem_per_zone=spec.mem_per_zone,
        name="aero",
        kernel_type="nautilus",
    )


@pytest.fixture
def env():
    return CovirtEnvironment()


def launch_nautilus(env, config):
    return env.controller.launch(nautilus_spec(nautilus_layout()), config)


class TestNativeBoot:
    def test_boots_and_reads_params(self, env):
        enclave = launch_nautilus(env, None)
        assert enclave.state is EnclaveState.RUNNING
        assert isinstance(enclave.kernel, NautilusKernel)
        assert "Nautilus" in enclave.kernel.console[0]
        assert sorted(enclave.kernel.online_cores) == sorted(
            enclave.assignment.core_ids
        )

    def test_timer_fully_masked(self, env):
        """The aerokernel's signature: zero periodic noise."""
        enclave = launch_nautilus(env, None)
        for core_id in enclave.assignment.core_ids:
            assert env.machine.core(core_id).apic.timer_period is None

    def test_unknown_kernel_type_rejected(self, env):
        spec = nautilus_spec(nautilus_layout())
        bad = ResourceSpec(
            cores_per_zone=spec.cores_per_zone,
            mem_per_zone=spec.mem_per_zone,
            kernel_type="plan9",
        )
        with pytest.raises(ValueError):
            env.controller.launch(bad, None)


class TestFibers:
    def test_cooperative_dispatch(self, env):
        enclave = launch_nautilus(env, None)
        kernel = enclave.kernel
        bsp = enclave.assignment.core_ids[0]
        log = []

        def worker(fiber):
            log.append(fiber.dispatches)
            return fiber.dispatches < 3  # yield twice, then finish

        fiber = kernel.spawn_fiber("worker", worker, core_id=bsp)
        dispatched = kernel.run_core(bsp)
        assert dispatched == 3
        assert fiber.state is FiberState.DONE
        assert log == [1, 2, 3]

    def test_fibers_interleave_on_yield(self, env):
        enclave = launch_nautilus(env, None)
        kernel = enclave.kernel
        bsp = enclave.assignment.core_ids[0]
        order = []
        kernel.spawn_fiber(
            "a", lambda f: (order.append("a"), f.dispatches < 2)[1], core_id=bsp
        )
        kernel.spawn_fiber(
            "b", lambda f: (order.append("b"), f.dispatches < 2)[1], core_id=bsp
        )
        kernel.run_core(bsp)
        assert order == ["a", "b", "a", "b"]

    def test_fiber_heaps_disjoint(self, env):
        enclave = launch_nautilus(env, None)
        kernel = enclave.kernel
        f1 = kernel.spawn_fiber("x", heap_bytes=2 * MiB)
        f2 = kernel.spawn_fiber("y", heap_bytes=2 * MiB)
        assert f1.heap_start + f1.heap_bytes <= f2.heap_start
        assert kernel.memmap.contains(f1.heap_start, f1.heap_bytes)


class TestUnderCovirt:
    def test_boots_protected_transparently(self, env):
        enclave = launch_nautilus(env, CovirtConfig.full())
        assert enclave.state is EnclaveState.RUNNING
        assert isinstance(enclave.kernel, NautilusKernel)
        status = env.mcp.kmod.ioctl(200, enclave.enclave_id)
        assert status["protected"]

    def test_legit_access_works(self, env):
        enclave = launch_nautilus(env, CovirtConfig.memory_only())
        kernel = enclave.kernel
        fiber = kernel.spawn_fiber("w", heap_bytes=MiB)
        bsp = enclave.assignment.core_ids[0]
        kernel.touch(bsp, fiber.heap_start, 8, write=True)
        assert kernel.touch(bsp, fiber.heap_start, 8) == b"\xaa" * 8

    def test_wild_access_contained(self, env):
        enclave = launch_nautilus(env, CovirtConfig.memory_only())
        bsp = enclave.assignment.core_ids[0]
        with pytest.raises(EnclaveFaultError):
            enclave.port.read(bsp, 50 * GiB, 8)
        assert enclave.state is EnclaveState.FAILED
        assert env.host.alive

    def test_stale_hotplug_bug_contained_same_as_kitten(self, env):
        enclave = launch_nautilus(env, CovirtConfig.memory_only())
        region = env.mcp.kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        enclave.kernel.buggy_cleanup = True
        env.mcp.kmod.remove_memory(enclave.enclave_id, region)
        bsp = enclave.assignment.core_ids[0]
        with pytest.raises(EnclaveFaultError):
            enclave.kernel.touch(bsp, region.start, 8)
        assert env.host.verify_integrity()

    def test_mixed_kernels_coexist(self, env):
        aero = launch_nautilus(env, CovirtConfig.memory_only())
        kitten = env.launch(nautilus_layout(), CovirtConfig.memory_only(), "k")
        from repro.kitten.kernel import KittenKernel

        assert isinstance(kitten.kernel, KittenKernel)
        assert isinstance(aero.kernel, NautilusKernel)
        # The aerokernel crashes; the LWK keeps running.
        with pytest.raises(EnclaveFaultError):
            aero.port.read(aero.assignment.core_ids[0], 50 * GiB, 8)
        assert kitten.state is EnclaveState.RUNNING

    def test_xemem_attach_into_nautilus(self, env):
        """Cross-kernel composition: Kitten exports, Nautilus attaches."""
        producer = env.launch(nautilus_layout(), CovirtConfig.memory_only(), "p")
        aero = launch_nautilus(env, CovirtConfig.memory_only())
        task = producer.kernel.spawn("exp", mem_bytes=MiB)
        seg = env.mcp.xemem.make(
            producer.enclave_id, "xk", task.slices[0].start, MiB
        )
        env.mcp.xemem.attach(aero.enclave_id, seg.segid)
        bsp = aero.assignment.core_ids[0]
        producer.port.write(
            producer.assignment.core_ids[0], seg.start, b"kitten->aero"
        )
        assert aero.kernel.touch(bsp, seg.start, 12) == b"kitten->aero"
        env.mcp.xemem.detach(aero.enclave_id, seg.segid)
        with pytest.raises(EnclaveFaultError):
            aero.port.read(bsp, seg.start, 8)
