"""TCASM-style versioned streams over XEMEM."""

import pytest

from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.hobbes.tcasm import StreamError, StreamReader, VersionedStream
from repro.pisces.enclave import EnclaveState

GiB = 1 << 30
MiB = 1 << 20
LAYOUT = Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})


@pytest.fixture
def pipeline():
    env = CovirtEnvironment()
    producer = env.launch(LAYOUT, CovirtConfig.memory_ipi(), "producer")
    consumer = env.launch(LAYOUT, CovirtConfig.memory_ipi(), "consumer")
    ptask = producer.kernel.spawn("pub", mem_bytes=2 * MiB)
    ctask = consumer.kernel.spawn("sub", mem_bytes=64 * 1024)
    stream = VersionedStream(env.mcp, producer, ptask, "field", 256 * 1024)
    reader = StreamReader(env.mcp, consumer, ctask, "field")
    return env, stream, reader


class TestVersionedStream:
    def test_no_version_before_first_publish(self, pipeline):
        _, _, reader = pipeline
        assert reader.read_latest() is None
        assert not reader.has_new_version()

    def test_publish_read_roundtrip(self, pipeline):
        _, stream, reader = pipeline
        stream.publish(b"step-1 data" * 100)
        assert reader.has_new_version()
        version, payload = reader.read_latest()
        assert version == 1
        assert payload == b"step-1 data" * 100

    def test_reader_always_sees_newest_complete_version(self, pipeline):
        _, stream, reader = pipeline
        for step in range(5):
            stream.publish(f"step-{step}".encode() * 50)
        version, payload = reader.read_latest()
        assert version == 5
        assert payload.startswith(b"step-4")

    def test_versions_alternate_slots(self, pipeline):
        """Double buffering: consecutive versions land in different
        slots, so an in-flight read of version N survives publish N+1."""
        _, stream, reader = pipeline
        stream.publish(b"A" * 10)
        addr_v1 = stream._slot_addr(stream.version % 2)
        stream.publish(b"B" * 10)
        addr_v2 = stream._slot_addr(stream.version % 2)
        assert addr_v1 != addr_v2
        _, payload = reader.read_latest()
        assert payload == b"B" * 10

    def test_oversized_payload_rejected(self, pipeline):
        _, stream, _ = pipeline
        with pytest.raises(StreamError):
            stream.publish(b"x" * (stream.slot_bytes + 1))

    def test_has_new_version_tracks_reads(self, pipeline):
        _, stream, reader = pipeline
        stream.publish(b"one")
        assert reader.has_new_version()
        reader.read_latest()
        assert not reader.has_new_version()
        stream.publish(b"two")
        assert reader.has_new_version()

    def test_detach_then_access_is_contained(self, pipeline):
        """After detach the consumer's EPT no longer maps the stream;
        a buggy late read is a contained fault, not corruption."""
        env, stream, reader = pipeline
        stream.publish(b"data")
        reader.read_latest()
        base = reader.base
        consumer = reader.consumer
        reader.detach()
        with pytest.raises(EnclaveFaultError):
            consumer.port.read(consumer.assignment.core_ids[0], base, 8)
        assert consumer.state is EnclaveState.FAILED
        assert env.host.alive

    def test_producer_needs_room(self):
        env = CovirtEnvironment()
        producer = env.launch(LAYOUT, None, "p")
        tiny = producer.kernel.spawn("pub", mem_bytes=4096)
        with pytest.raises(StreamError):
            VersionedStream(env.mcp, producer, tiny, "s", 256 * 1024)

    def test_works_native_too(self):
        """The abstraction is protection-agnostic."""
        env = CovirtEnvironment()
        producer = env.launch(LAYOUT, None, "p")
        consumer = env.launch(LAYOUT, None, "c")
        ptask = producer.kernel.spawn("pub", mem_bytes=2 * MiB)
        ctask = consumer.kernel.spawn("sub", mem_bytes=64 * 1024)
        stream = VersionedStream(env.mcp, producer, ptask, "raw", 64 * 1024)
        reader = StreamReader(env.mcp, consumer, ctask, "raw")
        stream.publish(b"native bytes")
        assert reader.read_latest()[1] == b"native bytes"
