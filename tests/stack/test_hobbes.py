"""Hobbes runtime: vector namespace, channels, forwarding, MCP."""

import pytest

from repro.hobbes.channels import ChannelClosed
from repro.hobbes.forwarding import FakeLinuxFs, SyscallForwarder
from repro.hobbes.master import MasterControlProcess
from repro.hobbes.registry import (
    FIRST_DYNAMIC_VECTOR,
    RegistryError,
    VectorAllocator,
)
from repro.hw.machine import Machine, MachineConfig
from repro.kitten.syscalls import Syscall, SyscallError
from repro.linuxhost.host import LINUX_OWNER, LinuxHost
from repro.pisces.enclave import EnclaveState, FaultRecord
from repro.pisces.resources import ResourceSpec

GiB = 1 << 30


@pytest.fixture
def stack():
    machine = Machine(MachineConfig.paper_testbed())
    host = LinuxHost(machine)
    mcp = MasterControlProcess(machine, host)
    return machine, host, mcp


def spec(ncores=2, mem=2 * GiB, name="t"):
    return ResourceSpec.evaluation_layout(ncores, 2, mem, name)


class TestVectorAllocator:
    def test_allocate_in_dynamic_range(self):
        alloc = VectorAllocator()
        grant = alloc.allocate(0, 1, {2})
        assert grant.vector >= FIRST_DYNAMIC_VECTOR

    def test_may_send_ground_truth(self):
        alloc = VectorAllocator()
        grant = alloc.allocate(3, 1, {2})
        assert alloc.may_send(2, 3, grant.vector)
        assert not alloc.may_send(9, 3, grant.vector)
        assert not alloc.may_send(2, 4, grant.vector)

    def test_pinned_vector(self):
        alloc = VectorAllocator()
        grant = alloc.allocate(0, 1, {2}, vector=100)
        assert grant.vector == 100
        with pytest.raises(RegistryError):
            alloc.allocate(0, 1, {2}, vector=100)  # already taken

    def test_pinned_outside_range_rejected(self):
        alloc = VectorAllocator()
        with pytest.raises(RegistryError):
            alloc.allocate(0, 1, {2}, vector=2)  # NMI

    def test_revoke(self):
        alloc = VectorAllocator()
        grant = alloc.allocate(0, 1, {2})
        alloc.revoke(grant)
        assert not alloc.may_send(2, 0, grant.vector)
        with pytest.raises(RegistryError):
            alloc.revoke(grant)

    def test_hooks_fire(self):
        alloc = VectorAllocator()
        events = []
        alloc.on_grant.append(lambda g: events.append(("grant", g.vector)))
        alloc.on_revoke.append(lambda g: events.append(("revoke", g.vector)))
        grant = alloc.allocate(0, 1, {2})
        alloc.revoke(grant)
        assert events == [("grant", grant.vector), ("revoke", grant.vector)]

    def test_grants_involving(self):
        alloc = VectorAllocator()
        g1 = alloc.allocate(0, 1, {2})
        g2 = alloc.allocate(1, 2, {3})
        alloc.allocate(2, 4, {5})
        involving_2 = alloc.grants_involving(2)
        assert g1 in involving_2 and g2 in involving_2
        assert len(involving_2) == 2

    def test_same_vector_different_cores_ok(self):
        alloc = VectorAllocator()
        g1 = alloc.allocate(0, 1, {2}, vector=100)
        g2 = alloc.allocate(1, 1, {2}, vector=100)
        assert g1.vector == g2.vector


class TestForwarder:
    def test_open_read_close(self):
        fwd = SyscallForwarder()
        fd = fwd.execute(Syscall.OPEN, ("/etc/hostname",))
        data = fwd.execute(Syscall.READ, (fd, 64))
        assert data == b"hobbes-node-0\n"
        fwd.execute(Syscall.CLOSE, (fd,))
        assert fwd.stats.round_trips == 3

    def test_enoent(self):
        fwd = SyscallForwarder()
        with pytest.raises(SyscallError):
            fwd.execute(Syscall.OPEN, ("/no/such/file",))

    def test_read_advances_offset(self):
        fwd = SyscallForwarder()
        fd = fwd.execute(Syscall.OPEN, ("/etc/hostname",))
        first = fwd.execute(Syscall.READ, (fd, 6))
        second = fwd.execute(Syscall.READ, (fd, 64))
        assert first + second == b"hobbes-node-0\n"

    def test_bad_fd(self):
        fwd = SyscallForwarder()
        with pytest.raises(SyscallError):
            fwd.execute(Syscall.READ, (42, 10))

    def test_stat(self):
        fwd = SyscallForwarder()
        info = fwd.execute(Syscall.STAT, ("/proc/version",))
        assert info["size"] > 0

    def test_fs_fd_accounting(self):
        fs = FakeLinuxFs()
        fd = fs.open("/etc/hostname")
        assert fs.open_fds == 1
        fs.close(fd)
        assert fs.open_fds == 0


class TestMcp:
    def test_launch_wires_runtime(self, stack):
        _, _, mcp = stack
        enclave = mcp.launch_enclave(spec())
        assert enclave.state is EnclaveState.RUNNING
        assert enclave.kernel.hobbes_client is not None
        assert enclave.enclave_id in mcp.channels

    def test_channel_doorbells_use_granted_vectors(self, stack):
        machine, _, mcp = stack
        enclave = mcp.launch_enclave(spec())
        channel = mcp.channels[enclave.enclave_id]
        channel.host_send("ping", None)
        bsp_apic = machine.core(enclave.assignment.core_ids[0]).apic
        assert channel.to_enclave_grant.vector in {
            irq.vector for irq in bsp_apic.delivered()
        }

    def test_end_to_end_forwarding(self, stack):
        _, _, mcp = stack
        enclave = mcp.launch_enclave(spec())
        kernel = enclave.kernel
        task = kernel.spawn("app")
        fd = kernel.syscall(task, Syscall.OPEN, "/etc/hostname")
        assert kernel.syscall(task, Syscall.READ, (fd), 64) == b"hobbes-node-0\n"
        assert mcp.forwarder.stats.by_syscall["OPEN"] == 1

    def test_closed_channel_raises(self, stack):
        _, _, mcp = stack
        enclave = mcp.launch_enclave(spec())
        channel = mcp.channels[enclave.enclave_id]
        channel.close()
        with pytest.raises(ChannelClosed):
            channel.enclave_send("x", None)

    def test_shutdown_returns_resources(self, stack):
        machine, host, mcp = stack
        before = host.owner_summary()[LINUX_OWNER]
        enclave = mcp.launch_enclave(spec())
        mcp.shutdown_enclave(enclave.enclave_id)
        assert host.owner_summary()[LINUX_OWNER] == before
        assert enclave.enclave_id not in mcp.channels
        assert mcp.vectors.grants_involving(enclave.enclave_id) == []

    def test_enclave_failed_notifies_dependents(self, stack):
        _, host, mcp = stack
        producer = mcp.launch_enclave(spec(name="producer"))
        consumer = mcp.launch_enclave(spec(name="consumer"))
        # Consumer attaches a segment the producer owns.
        ptask = producer.kernel.spawn("p", mem_bytes=1 << 20)
        segid = producer.kernel.syscall(
            ptask, Syscall.XEMEM_MAKE, "data", ptask.slices[0].start, 1 << 20
        )
        ctask = consumer.kernel.spawn("c")
        consumer.kernel.syscall(ctask, Syscall.XEMEM_ATTACH, segid)
        # Producer dies.
        fault = FaultRecord("ept_violation", "test", 0, 0)
        notifications = mcp.enclave_failed(producer.enclave_id, fault)
        assert producer.state is EnclaveState.FAILED
        whats = [n.what for n in notifications]
        assert any("segment" in w for w in whats)
        assert any("channel" in w for w in whats)
        # Consumer survives and its memory map no longer holds the segment.
        assert consumer.state is EnclaveState.RUNNING
        assert not consumer.kernel.memmap.contains(ptask.slices[0].start)
        assert host.alive

    def test_failed_enclave_resources_reclaimed(self, stack):
        _, host, mcp = stack
        before = host.owner_summary()[LINUX_OWNER]
        enclave = mcp.launch_enclave(spec())
        mcp.enclave_failed(
            enclave.enclave_id, FaultRecord("abort", "test", 0, 0)
        )
        assert host.owner_summary()[LINUX_OWNER] == before
