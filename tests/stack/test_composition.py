"""The Hobbes composition API: topology-adaptive multi-enclave apps."""

import pytest

from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment
from repro.hobbes.composition import (
    ComponentSpec,
    Composition,
    CompositionError,
)
from repro.linuxhost.host import LINUX_OWNER
from repro.pisces.enclave import EnclaveState

GiB = 1 << 30
MiB = 1 << 20


def component(name, protection=None, zone=0, cores=1, mem=GiB, task_mem=4 * MiB):
    return ComponentSpec(
        name=name,
        cores_per_zone={zone: cores},
        mem_per_zone={zone: mem},
        task_mem_bytes=task_mem,
        protection=protection,
    )


@pytest.fixture
def env():
    return CovirtEnvironment()


def two_stage(protection=None) -> Composition:
    return (
        Composition("pipeline")
        .add_component(component("sim", protection, zone=0))
        .add_component(component("viz", protection, zone=1))
        .couple("sim", "viz", buffer_bytes=MiB)
    )


class TestDescription:
    def test_duplicate_component_rejected(self):
        comp = Composition("x").add_component(component("a"))
        with pytest.raises(CompositionError):
            comp.add_component(component("a"))

    def test_coupling_endpoints_validated(self):
        comp = Composition("x").add_component(component("a"))
        with pytest.raises(CompositionError):
            comp.couple("a", "ghost")


class TestDeployment:
    def test_dedicated_enclaves_when_room(self, env):
        deployed = two_stage(CovirtConfig.memory_ipi()).deploy(env.controller)
        assert not deployed.colocated("sim", "viz")
        assert deployed.component_states() == {
            "sim": "running", "viz": "running"
        }
        coupling = deployed.couplings["sim->viz"]
        assert not coupling.colocated
        assert coupling.doorbell_vector is not None

    def test_data_flows_end_to_end(self, env):
        deployed = two_stage(CovirtConfig.memory_ipi()).deploy(env.controller)
        deployed.send("sim->viz", b"frame-0" * 10)
        assert deployed.receive("sim->viz", 7) == b"frame-0"
        viz = deployed.enclave_of("viz")
        vcore = viz.assignment.core_ids[0]
        vector = deployed.couplings["sim->viz"].doorbell_vector
        assert vector in {i.vector for i in viz.kernel.irq_log[vcore]}

    def test_teardown_leaves_machine_pristine(self, env):
        deployed = two_stage(CovirtConfig.memory_only()).deploy(env.controller)
        deployed.teardown()
        assert env.host.is_pristine()

    def test_failed_deploy_rolls_back(self, env):
        comp = (
            Composition("toobig")
            .add_component(component("a", task_mem=MiB))
            # Second component demands more memory than the machine has —
            # and colocation can't help because the kernels differ.
            .add_component(
                ComponentSpec(
                    name="b",
                    cores_per_zone={0: 1},
                    mem_per_zone={0: 100 * GiB},
                    kernel_type="nautilus",
                )
            )
        )
        with pytest.raises(CompositionError):
            comp.deploy(env.controller)
        assert env.host.is_pristine()


class TestTopologyAdaptation:
    def test_components_colocate_when_cores_run_out(self, env):
        """Six one-core zone-0 components on a machine with five
        offlinable zone-0 cores: the sixth co-locates; couplings keep
        working."""
        comp = Composition("wide")
        for i in range(6):
            comp.add_component(
                component(f"c{i}", CovirtConfig.memory_only(), zone=0, mem=GiB // 4)
            )
        comp.couple("c0", "c5", buffer_bytes=MiB)
        deployed = comp.deploy(env.controller)
        enclaves = {
            p.enclave.enclave_id for p in deployed.placements.values()
        }
        assert len(enclaves) == 5  # one enclave hosts two components
        deployed.send("c0->c5", b"hello")
        assert deployed.receive("c0->c5", 5) == b"hello"

    def test_intra_enclave_coupling_short_circuits(self, env):
        """Components forced into one enclave: no attach, no doorbell
        grant — same API."""
        comp = (
            Composition("tight")
            .add_component(component("a", CovirtConfig.memory_only(), cores=5))
            .add_component(component("b", CovirtConfig.memory_only(), cores=1))
            .couple("a", "b")
        )
        deployed = comp.deploy(env.controller)
        assert deployed.colocated("a", "b")
        coupling = deployed.couplings["a->b"]
        assert coupling.colocated
        assert coupling.doorbell_vector is None
        deployed.send("a->b", b"local")
        assert deployed.receive("a->b", 5) == b"local"

    def test_colocation_respects_protection_config(self, env):
        """A protected component never lands in a native enclave."""
        comp = (
            Composition("mixed")
            .add_component(component("native-app", None, cores=4))
            .add_component(
                component("protected-app", CovirtConfig.memory_only(), cores=1)
            )
        )
        deployed = comp.deploy(env.controller)
        assert not deployed.colocated("native-app", "protected-app")
        assert deployed.enclave_of("protected-app").virt_context is not None

    def test_colocation_refused_on_config_mismatch(self, env):
        """With no room left and only a native enclave to share,
        deploying a protected component must fail, not silently drop
        its protection."""
        comp = (
            Composition("mixed-tight")
            .add_component(component("native-app", None, cores=5))
            .add_component(
                component("protected-app", CovirtConfig.memory_only(), cores=1)
            )
        )
        with pytest.raises(CompositionError):
            comp.deploy(env.controller)


class TestFaultBehaviour:
    def test_producer_crash_leaves_consumer_running(self, env):
        deployed = two_stage(CovirtConfig.memory_only()).deploy(env.controller)
        sim = deployed.enclave_of("sim")
        with pytest.raises(EnclaveFaultError):
            sim.port.read(sim.assignment.core_ids[0], 50 * GiB, 8)
        states = deployed.component_states()
        assert states["sim"] == "failed"
        assert states["viz"] == "running"
        assert env.host.alive

    def test_teardown_after_partial_failure(self, env):
        deployed = two_stage(CovirtConfig.memory_only()).deploy(env.controller)
        sim = deployed.enclave_of("sim")
        with pytest.raises(EnclaveFaultError):
            sim.port.read(sim.assignment.core_ids[0], 50 * GiB, 8)
        deployed.teardown()
        assert env.host.is_pristine()
