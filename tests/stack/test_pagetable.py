"""Guest page tables: walking, huge pages, splitting, pruning."""

import pytest

from repro.hw.memory import PAGE_SIZE, PAGE_SIZE_1G, PAGE_SIZE_2M
from repro.kitten.pagetable import GuestPageTable, PageTableError

GiB = 1 << 30
MiB = 1 << 20


class TestMapping:
    def test_identity_walk(self):
        pt = GuestPageTable()
        pt.map(0x40000000, 0x40000000, 4 * MiB)
        result = pt.walk(0x40000000 + 12345)
        assert result is not None
        assert result.paddr == 0x40000000 + 12345

    def test_non_identity_walk(self):
        pt = GuestPageTable()
        pt.map(0, 8 * GiB, 2 * MiB)
        result = pt.walk(0x1234)
        assert result.paddr == 8 * GiB + 0x1234

    def test_huge_pages_used_when_aligned(self):
        pt = GuestPageTable()
        pt.map(GiB, GiB, GiB + 2 * PAGE_SIZE_2M + 3 * PAGE_SIZE)
        assert pt.leaf_count[PAGE_SIZE_1G] == 1
        assert pt.leaf_count[PAGE_SIZE_2M] == 2
        assert pt.leaf_count[PAGE_SIZE] == 3

    def test_max_page_caps_leaf_size(self):
        pt = GuestPageTable()
        pt.map(0, 0, GiB, max_page=PAGE_SIZE_2M)
        assert pt.leaf_count[PAGE_SIZE_1G] == 0
        assert pt.leaf_count[PAGE_SIZE_2M] == 512

    def test_unaligned_start_uses_small_pages(self):
        pt = GuestPageTable()
        pt.map(PAGE_SIZE, PAGE_SIZE, PAGE_SIZE_2M)
        assert pt.leaf_count[PAGE_SIZE_2M] == 0

    def test_levels_touched(self):
        pt = GuestPageTable()
        pt.map(0, 0, GiB)  # one 1G leaf
        pt.map(GiB, GiB, PAGE_SIZE_2M)  # one 2M leaf
        pt.map(GiB + PAGE_SIZE_2M, GiB + PAGE_SIZE_2M, PAGE_SIZE)  # 4K
        assert pt.walk(0).levels_touched == 2
        assert pt.walk(GiB).levels_touched == 3
        assert pt.walk(GiB + PAGE_SIZE_2M).levels_touched == 4

    def test_double_map_rejected(self):
        pt = GuestPageTable()
        pt.map(0, 0, PAGE_SIZE_2M)
        with pytest.raises(PageTableError):
            pt.map(0, 0, PAGE_SIZE)
        with pytest.raises(PageTableError):
            pt.map(PAGE_SIZE, PAGE_SIZE, PAGE_SIZE)  # under the huge leaf

    def test_readonly_mapping(self):
        pt = GuestPageTable()
        pt.map(0, 0, PAGE_SIZE, writable=False)
        assert pt.translate(0) is not None
        assert pt.translate(0, write=True) is None

    def test_unmapped_walk_is_none(self):
        pt = GuestPageTable()
        assert pt.walk(0x1000) is None

    def test_bad_args_rejected(self):
        pt = GuestPageTable()
        with pytest.raises(PageTableError):
            pt.map(1, 0, PAGE_SIZE)
        with pytest.raises(PageTableError):
            pt.map(0, 0, 0)


class TestUnmapping:
    def test_exact_unmap(self):
        pt = GuestPageTable()
        pt.map(0, 0, 4 * PAGE_SIZE)
        pt.unmap(0, 4 * PAGE_SIZE)
        assert pt.mapped_bytes() == 0
        assert pt.walk(0) is None

    def test_punching_hole_in_huge_page(self):
        pt = GuestPageTable()
        pt.map(0, 0, PAGE_SIZE_2M)
        pt.unmap(PAGE_SIZE, PAGE_SIZE)
        assert pt.walk(PAGE_SIZE) is None
        assert pt.walk(0) is not None
        assert pt.walk(2 * PAGE_SIZE).paddr == 2 * PAGE_SIZE
        assert pt.mapped_bytes() == PAGE_SIZE_2M - PAGE_SIZE

    def test_splitting_1g_page(self):
        pt = GuestPageTable()
        pt.map(0, GiB, GiB)  # non-identity 1G leaf
        pt.unmap(PAGE_SIZE_2M, PAGE_SIZE_2M)
        assert pt.walk(PAGE_SIZE_2M) is None
        # Translation of survivors preserved across the split.
        assert pt.walk(0).paddr == GiB
        assert pt.walk(5 * PAGE_SIZE_2M + 7).paddr == GiB + 5 * PAGE_SIZE_2M + 7

    def test_unmap_not_mapped_rejected(self):
        pt = GuestPageTable()
        with pytest.raises(PageTableError):
            pt.unmap(0, PAGE_SIZE)

    def test_remap_after_unmap_can_use_huge_again(self):
        """Pruning: empty interior tables don't block later huge leaves."""
        pt = GuestPageTable()
        pt.map(0, 0, PAGE_SIZE_2M, max_page=PAGE_SIZE)  # 512 small leaves
        pt.unmap(0, PAGE_SIZE_2M)
        pt.map(0, 0, PAGE_SIZE_2M)  # now as one huge leaf
        assert pt.leaf_count[PAGE_SIZE_2M] == 1
        assert pt.leaf_count[PAGE_SIZE] == 0

    def test_covers(self):
        pt = GuestPageTable()
        pt.map(0, 0, 4 * PAGE_SIZE)
        assert pt.covers(0, 4 * PAGE_SIZE)
        assert not pt.covers(0, 5 * PAGE_SIZE)
        pt.unmap(2 * PAGE_SIZE, PAGE_SIZE)
        assert not pt.covers(0, 4 * PAGE_SIZE)
        assert pt.covers(0, 2 * PAGE_SIZE)


class TestKernelIntegration:
    def test_kitten_builds_identity_tables_at_boot(self, env, small_layout):
        enclave = env.launch(small_layout, None)
        kernel = enclave.kernel
        assert kernel.pgtable.mapped_bytes() == enclave.assignment.total_memory
        for region in enclave.assignment.regions:
            result = kernel.pgtable.walk(region.start + 0x2000)
            assert result.paddr == region.start + 0x2000  # identity

    def test_lwk_uses_huge_pages(self, env, small_layout):
        enclave = env.launch(small_layout, None)
        counts = enclave.kernel.pgtable.leaf_count
        assert counts[PAGE_SIZE_2M] + counts[PAGE_SIZE_1G] > 0

    def test_hotplug_keeps_tables_in_sync(self, env, small_layout):
        enclave = env.launch(small_layout, None)
        region = env.mcp.kmod.add_memory(enclave.enclave_id, 4 * MiB, 0)
        assert enclave.kernel.pgtable.covers(region.start, region.size)
        env.mcp.kmod.remove_memory(enclave.enclave_id, region)
        assert not enclave.kernel.pgtable.covers(region.start, 1)

    def test_xemem_attach_installs_tables(self, env, small_layout):
        from repro.core.features import CovirtConfig

        e1 = env.launch(small_layout, CovirtConfig.memory_only(), "a")
        e2 = env.launch(small_layout, CovirtConfig.memory_only(), "b")
        task = e1.kernel.spawn("p", mem_bytes=MiB)
        seg = env.mcp.xemem.make(e1.enclave_id, "s", task.slices[0].start, MiB)
        env.mcp.xemem.attach(e2.enclave_id, seg.segid)
        assert e2.kernel.pgtable.covers(seg.start, MiB)
        env.mcp.xemem.detach(e2.enclave_id, seg.segid)
        assert not e2.kernel.pgtable.covers(seg.start, 1)

    def test_touch_faults_on_unmapped_guest_address(self, env, small_layout):
        from repro.kitten.kernel import GuestPageFault

        enclave = env.launch(small_layout, None)
        bsp = enclave.assignment.core_ids[0]
        with pytest.raises(GuestPageFault):
            enclave.kernel.touch(bsp, 40 * GiB, 8)
