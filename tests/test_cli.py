"""The command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_single(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Benchmark Name" in capsys.readouterr().out

    def test_run_multiple(self, capsys):
        assert main(["run", "fig5a", "fig5b"]) == 0
        out = capsys.readouterr().out
        assert "STREAM" in out and "RandomAccess" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fault_demo(self, capsys):
        assert main(["fault-demo"]) == 0
        out = capsys.readouterr().out
        assert "FAULT DOSSIER" in out
        assert "host survived: True" in out

    def test_every_registered_experiment_runs(self, capsys):
        # 'all' is the expensive path; exercise it once.
        assert main(["run", "all"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out and "Ablation" in out


class TestTraceExportPostmortemDir:
    def test_missing_directory_is_created(self, tmp_path, capsys):
        target = tmp_path / "not" / "yet" / "there"
        out = tmp_path / "trace.json"
        assert main([
            "trace-export", "--out", str(out),
            "--postmortem-dir", str(target),
        ]) == 0
        assert target.is_dir()
        # The canonical scenario's containment fault dumps a bundle.
        assert list(target.glob("postmortem_*.json"))
        assert "post-mortem" in capsys.readouterr().out

    def test_unwritable_path_is_a_one_line_error(self, tmp_path, capsys):
        # A path routed through an existing *file* can never become a
        # directory — even running as root (chmod tricks don't bite
        # root, this does).
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file")
        assert main([
            "trace-export", "--out", str(tmp_path / "trace.json"),
            "--postmortem-dir", str(blocker / "sub"),
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("trace-export:")
        assert len(err.strip().splitlines()) == 1  # one line, no traceback


class TestServeCli:
    def test_serve_demo_transcript(self, capsys):
        assert main(["serve-demo", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        for method in ("session.launch", "session.step", "session.run",
                       "session.inspect", "session.inject", "session.trace",
                       "session.kill"):
            assert f"--> {method}" in out
        assert "serve-demo: ok" in out

    def test_serve_help_routes_to_daemon_parser(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0
        assert "covirt-serve" in capsys.readouterr().out
