"""The command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_single(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Benchmark Name" in capsys.readouterr().out

    def test_run_multiple(self, capsys):
        assert main(["run", "fig5a", "fig5b"]) == 0
        out = capsys.readouterr().out
        assert "STREAM" in out and "RandomAccess" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fault_demo(self, capsys):
        assert main(["fault-demo"]) == 0
        out = capsys.readouterr().out
        assert "FAULT DOSSIER" in out
        assert "host survived: True" in out

    def test_every_registered_experiment_runs(self, capsys):
        # 'all' is the expensive path; exercise it once.
        assert main(["run", "all"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out and "Ablation" in out
