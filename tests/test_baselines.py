"""The traditional-VM baseline: costs that justify the paper's premise."""

import pytest

from repro.baselines.fullvirt import TraditionalVmm
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, MICROBENCH_LAYOUT
from repro.harness.experiments import run_motivation_fullvirt
from repro.workloads.hpcg import Hpcg
from repro.workloads.randomaccess import RandomAccess
from repro.workloads.stream import Stream


@pytest.fixture(scope="module")
def vmm():
    return TraditionalVmm()


def covirt_and_native(workload_factory):
    env = CovirtEnvironment()
    native_enclave = env.launch(MICROBENCH_LAYOUT, None, "n")
    native = env.engine.run(workload_factory(), native_enclave)
    env.teardown(native_enclave)
    enclave = env.launch(MICROBENCH_LAYOUT, CovirtConfig.memory_ipi(), "c")
    covirt = env.engine.run(workload_factory(), enclave)
    return native, covirt


class TestWorkloadComparison:
    @pytest.mark.parametrize("workload_factory", [Stream, RandomAccess, Hpcg])
    def test_fullvirt_always_slower_than_covirt(self, vmm, workload_factory):
        native, covirt = covirt_and_native(workload_factory)
        fullvirt = vmm.run(workload_factory(), ncores=1)
        assert fullvirt.elapsed_cycles > covirt.elapsed_cycles
        assert fullvirt.overhead_vs(native) > covirt.overhead_vs(native)

    def test_fullvirt_randomaccess_overhead_order_of_magnitude(self, vmm):
        """The 'perceived overhead' is real: ~10x Covirt's on the
        TLB-hostile workload."""
        native, covirt = covirt_and_native(RandomAccess)
        fullvirt = vmm.run(RandomAccess(), ncores=1)
        assert fullvirt.overhead_vs(native) > 4 * covirt.overhead_vs(native)

    def test_numa_blindness_costs_even_stream(self, vmm):
        native, _ = covirt_and_native(Stream)
        fullvirt = vmm.run(Stream(), ncores=1)
        assert fullvirt.overhead_vs(native) > 0.01  # >1 %, vs Covirt's ~0.3 %
        assert fullvirt.breakdown["numa"] > 0


class TestIpcComparison:
    def test_virtio_ipc_costs_more_at_every_size(self, vmm):
        for size in (64, 4096, 65536):
            assert (
                vmm.ipc_message_cost(size).total
                > 1.5 * vmm.covirt_message_cost(size)
            )

    def test_virtio_cost_scales_with_message_size(self, vmm):
        small = vmm.ipc_message_cost(64).total
        large = vmm.ipc_message_cost(65536).total
        assert large > small
        # Covirt's cost is size-independent: no copy through the VMM.
        assert vmm.covirt_message_cost(64) == vmm.covirt_message_cost(65536)


class TestDynamicMemoryComparison:
    def test_stop_the_world_scales_with_vcpus(self, vmm):
        one = vmm.attach_latency_cycles(64 << 20, vcpus=1)
        eight = vmm.attach_latency_cycles(64 << 20, vcpus=8)
        assert eight > one

    def test_fullvirt_attach_slower_than_covirt(self, vmm):
        from repro.perf.costs import DEFAULT_COSTS

        covirt = DEFAULT_COSTS.xemem_attach_cycles(64 << 20, covirt=True)
        fullvirt = vmm.attach_latency_cycles(64 << 20, vcpus=4)
        assert fullvirt > covirt


class TestMotivationExperiment:
    def test_driver_runs_and_renders(self):
        result = run_motivation_fullvirt()
        text = result.render()
        assert "traditional" in text
        assert len(result.rows) == 5
