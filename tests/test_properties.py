"""Property-based tests on the core data structures.

The invariants here are the ones the whole protection story leans on:
interval maps never overlap or leak bytes, EPT mapping is a faithful
invertible identity translation under arbitrary map/unmap sequences,
the guest memory map mirrors set semantics, command queues never lose
or reorder commands, and whitelists are exact.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.commands import CommandQueue, CommandType
from repro.fuzz.rng import named_stream
from repro.core.ipi import IpiWhitelist
from repro.hw.apic import IpiMessage
from repro.hw.memory import PAGE_SIZE, IntervalMap, PhysicalMemory
from repro.kitten.memmap import GuestMemoryMap, MemoryMapError
from repro.vmx.ept import EptError, ExtendedPageTable, EptViolationInfo

pytestmark = pytest.mark.slow

PAGES = 64  # work in a small 64-page universe for tractable examples


# -- strategies ------------------------------------------------------------

page_range = st.tuples(
    st.integers(min_value=0, max_value=PAGES - 1),
    st.integers(min_value=1, max_value=16),
).map(lambda t: (t[0] * PAGE_SIZE, min(t[1], PAGES - t[0]) * PAGE_SIZE))

nonempty_range = page_range.filter(lambda r: r[1] > 0)

owners = st.sampled_from(["a", "b", "c", "free"])


class TestIntervalMapProperties:
    @given(st.lists(st.tuples(nonempty_range, owners), max_size=30))
    def test_invariants_hold_under_arbitrary_assignment(self, ops):
        imap = IntervalMap(0, PAGES * PAGE_SIZE, "free")
        for (start, size), owner in ops:
            imap.set(start, start + size, owner)
            imap.check_invariants()

    @given(st.lists(st.tuples(nonempty_range, owners), max_size=30))
    def test_point_queries_match_last_writer(self, ops):
        imap = IntervalMap(0, PAGES * PAGE_SIZE, "free")
        # Shadow model: a plain per-page dict.
        shadow = {page: "free" for page in range(PAGES)}
        for (start, size), owner in ops:
            imap.set(start, start + size, owner)
            for page in range(start // PAGE_SIZE, (start + size) // PAGE_SIZE):
                shadow[page] = owner
        for page, expected in shadow.items():
            assert imap.get(page * PAGE_SIZE) == expected

    @given(st.lists(st.tuples(nonempty_range, owners), max_size=30))
    def test_total_bytes_conserved(self, ops):
        imap = IntervalMap(0, PAGES * PAGE_SIZE, "free")
        for (start, size), owner in ops:
            imap.set(start, start + size, owner)
        total = sum(e - s for s, e, _ in imap.intervals())
        assert total == PAGES * PAGE_SIZE


class TestEptProperties:
    @given(st.lists(nonempty_range, max_size=12))
    def test_mapped_ranges_translate_identity(self, ranges):
        ept = ExtendedPageTable()
        mapped: set[int] = set()  # page numbers
        for start, size in ranges:
            pages = set(range(start // PAGE_SIZE, (start + size) // PAGE_SIZE))
            try:
                ept.map_region(start, size)
            except EptError:
                assert pages & mapped  # only overlap may be rejected
                continue
            mapped |= pages
        ept.check_invariants()
        for page in range(PAGES):
            addr = page * PAGE_SIZE + 7
            result = ept.translate(addr)
            if page in mapped:
                assert not isinstance(result, EptViolationInfo)
                assert result[0] == addr  # identity
            else:
                assert isinstance(result, EptViolationInfo)

    @given(
        st.lists(
            st.tuples(st.booleans(), nonempty_range), min_size=1, max_size=24
        )
    )
    def test_map_unmap_sequences_match_set_model(self, ops):
        """EPT state under arbitrary valid map/unmap = plain set algebra."""
        ept = ExtendedPageTable()
        model: set[int] = set()
        for is_map, (start, size) in ops:
            pages = set(range(start // PAGE_SIZE, (start + size) // PAGE_SIZE))
            if is_map:
                if pages & model:
                    continue  # controller never double-maps
                ept.map_region(start, size)
                model |= pages
            else:
                if not pages <= model:
                    continue  # controller never blind-unmaps
                ept.unmap_region(start, size)
                model -= pages
            ept.check_invariants()
            assert ept.mapped_bytes == len(model) * PAGE_SIZE
        for page in range(PAGES):
            assert ept.is_mapped(page * PAGE_SIZE) == (page in model)

    @given(nonempty_range)
    def test_coalescing_never_changes_translation(self, r):
        start, size = r
        flat = ExtendedPageTable()
        fat = ExtendedPageTable()
        flat.map_region(start, size, coalesce=False)
        fat.map_region(start, size, coalesce=True)
        for addr in range(start, start + size, PAGE_SIZE):
            f = flat.translate(addr + 3)
            g = fat.translate(addr + 3)
            assert f[0] == g[0]
        assert flat.mapped_bytes == fat.mapped_bytes


class TestGuestMemoryMapProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), nonempty_range), min_size=1, max_size=24
        )
    )
    def test_matches_set_model(self, ops):
        mm = GuestMemoryMap()
        model: set[int] = set()
        for is_add, (start, size) in ops:
            pages = set(range(start // PAGE_SIZE, (start + size) // PAGE_SIZE))
            if is_add:
                if pages & model:
                    continue
                mm.add(start, size)
                model |= pages
            else:
                if not pages <= model:
                    continue
                mm.remove(start, size)
                model -= pages
            mm.check_invariants()
        assert mm.total_bytes == len(model) * PAGE_SIZE
        for page in range(PAGES):
            assert mm.contains(page * PAGE_SIZE) == (page in model)


class TestCommandQueueProperties:
    @given(
        st.lists(
            st.sampled_from(list(CommandType)), min_size=1, max_size=40
        )
    )
    def test_fifo_no_loss_no_reorder(self, types):
        memory = PhysicalMemory(PAGE_SIZE)
        queue = CommandQueue(memory, 0, capacity=8)
        sent = []
        received = []
        for i, ctype in enumerate(types):
            sent.append(queue.enqueue(ctype, arg0=i))
            # Drain opportunistically to stay under capacity.
            if queue.pending() >= 8 or i == len(types) - 1:
                while (cmd := queue.dequeue()) is not None:
                    received.append(cmd)
                    queue.mark_completed(cmd)
        assert received == sent
        assert all(queue.is_completed(c) for c in sent)


class TestGuestPageTableProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), nonempty_range), min_size=1, max_size=20
        )
    )
    def test_matches_set_model_with_splits(self, ops):
        """Arbitrary map/partial-unmap sequences = set algebra, even when
        unmaps carve through huge leaves."""
        from repro.kitten.pagetable import GuestPageTable, PageTableError

        pt = GuestPageTable()
        model: set[int] = set()
        for is_map, (start, size) in ops:
            pages = set(range(start // PAGE_SIZE, (start + size) // PAGE_SIZE))
            if is_map:
                if pages & model:
                    continue
                pt.map(start, start, size)
                model |= pages
            else:
                if not pages <= model:
                    continue  # kernels never blind-unmap
                pt.unmap(start, size)
                model -= pages
            assert pt.mapped_bytes() == len(model) * PAGE_SIZE
        for page in range(PAGES):
            addr = page * PAGE_SIZE + 5
            result = pt.walk(addr)
            if page in model:
                assert result is not None and result.paddr == addr
            else:
                assert result is None

    @given(nonempty_range)
    def test_walk_agrees_with_covers(self, r):
        from repro.kitten.pagetable import GuestPageTable

        start, size = r
        pt = GuestPageTable()
        pt.map(start, start, size)
        assert pt.covers(start, size)
        assert not pt.covers(start, size + PAGE_SIZE)


class TestPackingProperties:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                 max_size=8, unique=True),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=PAGES - 2),
                st.integers(min_value=1, max_value=4),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    def test_boot_params_roundtrip(self, enclave_id, cores, raw_regions):
        from repro.hw.memory import MemoryRegion
        from repro.pisces.bootparams import PiscesBootParams

        regions = [
            MemoryRegion(start * PAGE_SIZE, size * PAGE_SIZE)
            for start, size in raw_regions
        ]
        params = PiscesBootParams(enclave_id, cores, regions, channel_addr=123)
        clone = PiscesBootParams.unpack(params.pack())
        assert clone.enclave_id == enclave_id
        assert clone.core_ids == cores
        assert clone.regions == regions
        assert clone.channel_addr == 123

    @given(
        st.sampled_from(list(CommandType)),
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=0, max_value=2**64 - 1),
        st.booleans(),
    )
    def test_command_slot_roundtrip(self, ctype, arg0, arg1, completed):
        from repro.core.commands import Command

        cmd = Command(ctype, seq=7, arg0=arg0, arg1=arg1)
        clone, done = Command.unpack(cmd.pack(completed=completed))
        assert clone == cmd
        assert done == completed


class TestXememLifecycleProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["make", "attach", "detach", "remove"]),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_random_segment_churn_keeps_maps_consistent(self, ops):
        """Arbitrary make/attach/detach/remove sequences: the attacher's
        memory map and EPT always agree with the segment bookkeeping."""
        from repro.core.features import CovirtConfig
        from repro.harness.env import CovirtEnvironment, Layout
        from repro.xemem.segment import SegmentError

        GiB = 1 << 30
        env = CovirtEnvironment()
        owner = env.launch(
            Layout("o", {0: 1}, {0: GiB}), CovirtConfig.memory_only(), "o"
        )
        attacher = env.launch(
            Layout("a", {1: 1}, {1: GiB}), CovirtConfig.memory_only(), "a"
        )
        task = owner.kernel.spawn("exp", mem_bytes=1 << 22)
        base = task.slices[0].start
        segids: list[int] = []
        attached: set[int] = set()
        counter = 0
        for op, idx in ops:
            try:
                if op == "make":
                    seg = env.mcp.xemem.make(
                        owner.enclave_id, f"s{counter}", base, 1 << 20
                    )
                    counter += 1
                    segids.append(seg.segid)
                elif op == "attach" and segids:
                    segid = segids[idx % len(segids)]
                    if segid not in attached and not attached:
                        # One live attachment at a time: the owner range
                        # is shared, so concurrent attaches would overlap
                        # in the attacher's map.
                        env.mcp.xemem.attach(attacher.enclave_id, segid)
                        attached.add(segid)
                elif op == "detach" and attached:
                    segid = sorted(attached)[idx % len(attached)]
                    env.mcp.xemem.detach(attacher.enclave_id, segid)
                    attached.discard(segid)
                elif op == "remove" and segids:
                    segid = segids[idx % len(segids)]
                    if segid not in attached:
                        env.mcp.xemem.remove(segid)
                        segids.remove(segid)
            except SegmentError:
                pass
            # Invariant: attacher sees the region iff an attachment lives.
            ctx = env.controller.context_for(attacher.enclave_id)
            assert attacher.kernel.memmap.contains(base) == bool(attached)
            assert ctx.ept.table.is_mapped(base) == bool(attached)
            attacher.kernel.memmap.check_invariants()
            ctx.ept.table.check_invariants()


class TestWhitelistProperties:
    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=48, max_value=120),
            ),
            max_size=40,
        )
    )
    def test_exactly_reflects_grant_history(self, ops):
        wl = IpiWhitelist()
        model: set[tuple[int, int]] = set()
        for allow, core, vector in ops:
            if allow:
                wl.allow(core, vector)
                model.add((core, vector))
            else:
                wl.revoke(core, vector)
                model.discard((core, vector))
        assert wl.allowed_pairs() == model
        for core in range(8):
            for vector in (48, 90, 120):
                permitted, _ = wl.permits(IpiMessage(0, core, vector))
                assert permitted == ((core, vector) in model)


# -- seeded machine-level properties (stdlib-only) -------------------------
#
# The hypothesis suites above exercise data structures in isolation.
# The classes below drive the *assembled machine* — real launches, vector
# grants, revocations, and wild-access faults — from a named stream
# (repro.fuzz.rng), so they need no third-party shrinker and a failure
# report quotes one seed that replays the exact interleaving.


def _seeded_env_ops():
    """Deferred imports so the hypothesis-only suites above stay usable
    even if the harness layer is being refactored."""
    from repro.core.faults import EnclaveFaultError
    from repro.core.features import CovirtConfig
    from repro.harness.env import CovirtEnvironment, Layout
    from repro.pisces.kmod import PiscesError
    from repro.pisces.resources import enclave_owner

    return EnclaveFaultError, CovirtConfig, CovirtEnvironment, Layout, PiscesError, enclave_owner


class TestSeededOwnershipDisjointness:
    """Page-ownership disjointness under arbitrary assign/revoke/fault
    interleavings on a live machine."""

    TRIALS = 3
    STEPS = 35
    MiB = 1 << 20
    GiB = 1 << 30

    def _audit(self, env, dead_ids, enclave_owner):
        mem = env.machine.memory
        mem.check_invariants()
        intervals = list(mem._owners.intervals())
        # Conservation: the ownership map partitions all of physical
        # memory — no page unaccounted, no page counted twice.
        assert sum(end - start for start, end, _ in intervals) == mem.size
        for (s1, e1, _), (s2, _e2, _) in zip(intervals, intervals[1:]):
            assert e1 <= s2, f"ownership intervals overlap at {s2:#x}"
        # Every running enclave's regions are disjoint from every
        # other's, and each is attributed to exactly its owner.
        from repro.pisces.enclave import EnclaveState

        spans = []
        for eid, enclave in env.mcp.kmod.enclaves.items():
            if enclave.state is not EnclaveState.RUNNING:
                continue
            for region in enclave.assignment.regions:
                spans.append((region.start, region.start + region.size, eid))
                assert mem._owners.get(region.start) == enclave_owner(eid)
        spans.sort()
        for (s1, e1, id1), (s2, _e2, id2) in zip(spans, spans[1:]):
            assert e1 <= s2, f"enclaves {id1}/{id2} share pages at {s2:#x}"
        # Revoked/faulted enclaves own nothing anymore.
        for eid in dead_ids:
            assert not mem.owned_by(enclave_owner(eid))

    def test_disjoint_under_assign_revoke_fault(self):
        (EnclaveFaultError, CovirtConfig, CovirtEnvironment, Layout,
         PiscesError, enclave_owner) = _seeded_env_ops()
        from repro.hw.memory import OwnershipError

        for trial in range(self.TRIALS):
            rng = named_stream(f"properties/ownership/{trial}")
            print(f"ownership trial rng: {rng.describe()}")
            env = CovirtEnvironment()
            live, dead_ids = [], set()
            for _ in range(self.STEPS):
                op = rng.choice(["launch", "launch", "revoke", "fault"])
                if op == "launch":
                    zone = rng.randint(0, 1)
                    layout = Layout(
                        "p", {zone: 1},
                        {zone: rng.choice([256 * self.MiB, self.GiB])},
                    )
                    config = rng.choice(
                        [CovirtConfig.memory_only(), CovirtConfig.full()]
                    )
                    try:
                        live.append(env.launch(layout, config))
                    except (PiscesError, OwnershipError):
                        pass  # machine full — a fine interleaving too
                elif op == "revoke" and live:
                    enclave = live.pop(rng.randrange(len(live)))
                    env.mcp.shutdown_enclave(enclave.enclave_id)
                    dead_ids.add(enclave.enclave_id)
                elif op == "fault" and live:
                    enclave = live.pop(rng.randrange(len(live)))
                    bsp = enclave.assignment.core_ids[0]
                    try:
                        enclave.port.read(bsp, 50 * self.GiB, 8)
                    except EnclaveFaultError:
                        pass
                    dead_ids.add(enclave.enclave_id)
                self._audit(env, dead_ids, enclave_owner)


class TestSeededWhitelistClosure:
    """Vector-whitelist closure under arbitrary grant/revoke/fault
    interleavings: every whitelist entry is backed by a registry grant
    naming that enclave as sender, and every grant is reflected in the
    sender's whitelist — in both directions, at every step."""

    TRIALS = 3
    STEPS = 30
    MiB = 1 << 20
    GiB = 1 << 30

    def _audit(self, env, dead_ids):
        from repro.pisces.enclave import EnclaveState

        vectors = env.mcp.vectors
        for eid, ctx in env.controller.contexts.items():
            if ctx.enclave.state is not EnclaveState.RUNNING:
                continue
            if ctx.whitelist is None:
                continue
            allowed = ctx.whitelist.allowed_pairs()
            for dest_core, vector in allowed:
                assert vectors.may_send(eid, dest_core, vector), (
                    f"enclave {eid} may IPI core {dest_core} vec {vector} "
                    "with no backing grant"
                )
            for grant in vectors.active_grants():
                if eid in grant.allowed_senders:
                    assert (grant.dest_core, grant.vector) in allowed, (
                        f"grant {grant.purpose!r} names enclave {eid} but "
                        "its whitelist lost the pair"
                    )
        for eid in dead_ids:
            assert not vectors.grants_involving(eid), (
                f"dead enclave {eid} still named by a vector grant"
            )

    def test_closure_under_grant_revoke_fault(self):
        (EnclaveFaultError, CovirtConfig, CovirtEnvironment, Layout,
         PiscesError, _enclave_owner) = _seeded_env_ops()
        from repro.hobbes.registry import RegistryError

        for trial in range(self.TRIALS):
            rng = named_stream(f"properties/whitelist/{trial}")
            print(f"whitelist trial rng: {rng.describe()}")
            env = CovirtEnvironment()
            live = [
                env.launch(
                    Layout("w", {z: 1}, {z: 512 * self.MiB}),
                    CovirtConfig.full(),
                    name=f"wl{z}",
                )
                for z in (0, 1)
            ]
            granted, dead_ids = [], set()
            for _ in range(self.STEPS):
                op = rng.choice(["grant", "grant", "revoke", "fault"])
                if op == "grant" and live:
                    dest = rng.choice(live)
                    senders = {
                        e.enclave_id
                        for e in live
                        if rng.random() < 0.5
                    } or {dest.enclave_id}
                    try:
                        grant = env.mcp.vectors.allocate(
                            dest_core=rng.choice(dest.assignment.core_ids),
                            dest_enclave_id=dest.enclave_id,
                            allowed_senders=senders,
                            purpose=f"prop:{len(granted)}",
                        )
                        granted.append(grant)
                    except RegistryError:
                        pass  # core's vector space exhausted
                elif op == "revoke" and granted:
                    grant = granted.pop(rng.randrange(len(granted)))
                    # A fault may have swept the grant away already.
                    still = env.mcp.vectors.grant_for(
                        grant.dest_core, grant.vector
                    )
                    if still is grant:
                        env.mcp.vectors.revoke(grant)
                elif op == "fault" and len(live) > 1:
                    enclave = live.pop(rng.randrange(len(live)))
                    bsp = enclave.assignment.core_ids[0]
                    try:
                        enclave.port.read(bsp, 50 * self.GiB, 8)
                    except EnclaveFaultError:
                        pass
                    dead_ids.add(enclave.enclave_id)
                self._audit(env, dead_ids)
