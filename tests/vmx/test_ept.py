"""Extended page tables: mapping, coalescing, splintering, translation."""

import pytest

from repro.hw.memory import PAGE_SIZE, PAGE_SIZE_1G, PAGE_SIZE_2M
from repro.vmx.ept import (
    EptError,
    EptMapping,
    EptPermissions,
    EptViolationInfo,
    ExtendedPageTable,
)

MiB = 1 << 20
GiB = 1 << 30


class TestEptMapping:
    def test_alignment_enforced(self):
        with pytest.raises(EptError):
            EptMapping(PAGE_SIZE, 0, PAGE_SIZE_2M, EptPermissions.full())
        with pytest.raises(EptError):
            EptMapping(0, 0, 12345, EptPermissions.full())

    def test_translate(self):
        m = EptMapping(0x200000, 0x400000, PAGE_SIZE_2M, EptPermissions.full())
        assert m.translate(0x200000 + 5) == 0x400000 + 5
        with pytest.raises(EptError):
            m.translate(0x100000)

    def test_identity(self):
        assert EptMapping(0x1000, 0x1000, PAGE_SIZE, EptPermissions.full()).is_identity
        assert not EptMapping(
            0x1000, 0x2000, PAGE_SIZE, EptPermissions.full()
        ).is_identity


class TestPermissions:
    def test_full_allows_everything(self):
        perms = EptPermissions.full()
        assert perms.allows()
        assert perms.allows(write=True)
        assert perms.allows(execute=True)

    def test_readonly_denies_write(self):
        perms = EptPermissions(read=True, write=False, execute=False)
        assert perms.allows()
        assert not perms.allows(write=True)
        assert not perms.allows(execute=True)


class TestMapRegion:
    def test_coalesces_to_largest_pages(self):
        ept = ExtendedPageTable()
        ept.map_region(0, GiB + 2 * PAGE_SIZE_2M + 3 * PAGE_SIZE)
        counts = ept.count_by_size()
        assert counts[PAGE_SIZE_1G] == 1
        assert counts[PAGE_SIZE_2M] == 2
        assert counts[PAGE_SIZE] == 3

    def test_unaligned_start_limits_page_size(self):
        ept = ExtendedPageTable()
        # Start 4K past a 2M boundary: leading 4K pages until aligned.
        ept.map_region(PAGE_SIZE_2M + PAGE_SIZE, PAGE_SIZE_2M)
        counts = ept.count_by_size()
        assert counts[PAGE_SIZE_2M] == 0
        assert counts[PAGE_SIZE] == PAGE_SIZE_2M // PAGE_SIZE

    def test_coalescing_disabled(self):
        ept = ExtendedPageTable()
        ept.map_region(0, PAGE_SIZE_2M, coalesce=False)
        assert ept.count_by_size()[PAGE_SIZE] == 512

    def test_double_map_rejected(self):
        ept = ExtendedPageTable()
        ept.map_region(0, 4 * PAGE_SIZE)
        with pytest.raises(EptError):
            ept.map_region(2 * PAGE_SIZE, 4 * PAGE_SIZE)

    def test_non_identity_mapping(self):
        ept = ExtendedPageTable()
        ept.map_region(0, 2 * PAGE_SIZE, host_start=0x100000)
        hpa, _ = ept.translate(PAGE_SIZE + 8)
        assert hpa == 0x100000 + PAGE_SIZE + 8
        assert not ept.is_identity

    def test_bad_ranges_rejected(self):
        ept = ExtendedPageTable()
        with pytest.raises(EptError):
            ept.map_region(0, 0)
        with pytest.raises(EptError):
            ept.map_region(5, PAGE_SIZE)
        with pytest.raises(EptError):
            ept.map_region(0, PAGE_SIZE, host_start=3)

    def test_generation_bumps(self):
        ept = ExtendedPageTable()
        g0 = ept.generation
        ept.map_region(0, PAGE_SIZE)
        assert ept.generation == g0 + 1


class TestTranslate:
    def test_hit(self):
        ept = ExtendedPageTable()
        ept.map_region(0, 4 * PAGE_SIZE)
        result = ept.translate(3 * PAGE_SIZE + 100)
        assert not isinstance(result, EptViolationInfo)
        hpa, mapping = result
        assert hpa == 3 * PAGE_SIZE + 100

    def test_violation_on_unmapped(self):
        ept = ExtendedPageTable()
        ept.map_region(0, PAGE_SIZE)
        result = ept.translate(PAGE_SIZE, write=True)
        assert isinstance(result, EptViolationInfo)
        assert result.is_write
        assert "write" in result.describe()

    def test_violation_on_permission(self):
        ept = ExtendedPageTable()
        ept.map_region(
            0, PAGE_SIZE, perms=EptPermissions(read=True, write=False, execute=False)
        )
        assert isinstance(ept.translate(0, write=True), EptViolationInfo)
        assert not isinstance(ept.translate(0), EptViolationInfo)


class TestUnmapRegion:
    def test_exact_unmap(self):
        ept = ExtendedPageTable()
        ept.map_region(0, 4 * PAGE_SIZE)
        ept.unmap_region(0, 4 * PAGE_SIZE)
        assert len(ept) == 0
        assert ept.mapped_bytes == 0

    def test_partial_unmap_of_small_pages(self):
        ept = ExtendedPageTable()
        ept.map_region(0, 4 * PAGE_SIZE)
        ept.unmap_region(PAGE_SIZE, 2 * PAGE_SIZE)
        assert ept.is_mapped(0)
        assert not ept.is_mapped(PAGE_SIZE)
        assert not ept.is_mapped(2 * PAGE_SIZE)
        assert ept.is_mapped(3 * PAGE_SIZE)

    def test_splinters_large_page(self):
        ept = ExtendedPageTable()
        ept.map_region(0, PAGE_SIZE_2M)
        assert ept.count_by_size()[PAGE_SIZE_2M] == 1
        ept.unmap_region(PAGE_SIZE, PAGE_SIZE)  # punch a 4K hole
        assert not ept.is_mapped(PAGE_SIZE)
        assert ept.is_mapped(0)
        assert ept.is_mapped(2 * PAGE_SIZE)
        assert ept.mapped_bytes == PAGE_SIZE_2M - PAGE_SIZE
        ept.check_invariants()

    def test_splinter_preserves_translation(self):
        ept = ExtendedPageTable()
        ept.map_region(0, PAGE_SIZE_2M, host_start=PAGE_SIZE_2M)
        ept.unmap_region(0, PAGE_SIZE)
        hpa, _ = ept.translate(5 * PAGE_SIZE)
        assert hpa == PAGE_SIZE_2M + 5 * PAGE_SIZE

    def test_unmap_not_fully_mapped_rejected(self):
        ept = ExtendedPageTable()
        ept.map_region(0, 2 * PAGE_SIZE)
        with pytest.raises(EptError):
            ept.unmap_region(0, 4 * PAGE_SIZE)

    def test_unmap_returns_bytes(self):
        ept = ExtendedPageTable()
        ept.map_region(0, 8 * PAGE_SIZE)
        assert ept.unmap_region(0, 8 * PAGE_SIZE) == 8 * PAGE_SIZE

    def test_map_unmap_inverse(self):
        ept = ExtendedPageTable()
        ept.map_region(GiB, 100 * MiB)
        before = ept.mapped_bytes
        ept.map_region(0, 30 * MiB)
        ept.unmap_region(0, 30 * MiB)
        assert ept.mapped_bytes == before
        result = ept.translate(GiB + 50 * MiB)
        assert not isinstance(result, EptViolationInfo)
        ept.check_invariants()

    def test_mappings_iterator_sorted(self):
        ept = ExtendedPageTable()
        ept.map_region(8 * PAGE_SIZE, PAGE_SIZE)
        ept.map_region(0, PAGE_SIZE)
        starts = [m.guest_page for m in ept.mappings()]
        assert starts == sorted(starts)
