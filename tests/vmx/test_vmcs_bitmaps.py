"""VMCS validation, MSR/IO bitmaps, vAPIC, posted-interrupt descriptor."""

import pytest

from repro.hw.apic import DeliveryMode, IpiMessage
from repro.hw.msr import MSR
from repro.vmx.ept import ExtendedPageTable
from repro.vmx.io_bitmap import IoBitmap
from repro.vmx.msr_bitmap import MsrBitmap
from repro.vmx.posted import PostedInterruptDescriptor
from repro.vmx.vapic import VapicMode, VirtualApicPage
from repro.vmx.vmcs import ExecutionControls, GuestState, Vmcs, VmcsValidationError


def valid_vmcs(**overrides) -> Vmcs:
    vmcs = Vmcs(core_id=0, guest=GuestState(entry_point=0x10000, boot_params_gpa=0x1000))
    for key, value in overrides.items():
        setattr(vmcs, key, value)
    return vmcs


class TestVmcsValidation:
    def test_minimal_valid(self):
        valid_vmcs().validate()

    def test_bad_revision(self):
        vmcs = valid_vmcs(revision=0xBAD)
        with pytest.raises(VmcsValidationError):
            vmcs.validate()

    def test_missing_entry_point(self):
        vmcs = valid_vmcs(guest=GuestState(entry_point=0))
        with pytest.raises(VmcsValidationError):
            vmcs.validate()

    def test_ept_enabled_requires_table(self):
        vmcs = valid_vmcs()
        vmcs.controls.enable_ept = True
        with pytest.raises(VmcsValidationError):
            vmcs.validate()
        vmcs.ept = ExtendedPageTable()
        vmcs.validate()

    def test_msr_bitmap_required(self):
        vmcs = valid_vmcs()
        vmcs.controls.use_msr_bitmap = True
        with pytest.raises(VmcsValidationError):
            vmcs.validate()

    def test_io_bitmap_required(self):
        vmcs = valid_vmcs()
        vmcs.controls.use_io_bitmap = True
        with pytest.raises(VmcsValidationError):
            vmcs.validate()

    def test_vapic_requires_page(self):
        vmcs = valid_vmcs()
        vmcs.controls.vapic_mode = VapicMode.TRAP
        with pytest.raises(VmcsValidationError):
            vmcs.validate()
        vmcs.vapic_page = VirtualApicPage(0)
        vmcs.validate()

    def test_posted_requires_descriptor_and_exiting(self):
        vmcs = valid_vmcs()
        vmcs.controls.vapic_mode = VapicMode.POSTED
        vmcs.vapic_page = VirtualApicPage(0)
        with pytest.raises(VmcsValidationError):
            vmcs.validate()
        vmcs.pi_descriptor = PostedInterruptDescriptor(242)
        vmcs.controls.external_interrupt_exiting = False
        with pytest.raises(VmcsValidationError):
            vmcs.validate()
        vmcs.controls.external_interrupt_exiting = True
        vmcs.validate()

    def test_guest_must_be_long_mode_identity(self):
        vmcs = valid_vmcs(
            guest=GuestState(entry_point=0x10000, long_mode=False)
        )
        with pytest.raises(VmcsValidationError):
            vmcs.validate()

    def test_touch_bumps_generation(self):
        vmcs = valid_vmcs()
        g = vmcs.generation
        vmcs.touch()
        assert vmcs.generation == g + 1


class TestMsrBitmap:
    def test_default_traps_unknown(self):
        bitmap = MsrBitmap()
        assert bitmap.should_exit(0x9999, is_write=True)
        assert bitmap.should_exit(0x9999, is_write=False)

    def test_benign_hot_msrs_pass_through(self):
        bitmap = MsrBitmap()
        assert not bitmap.should_exit(MSR.IA32_FS_BASE, is_write=True)
        assert not bitmap.should_exit(MSR.IA32_TSC_AUX, is_write=False)

    def test_allow_all_never_exits(self):
        bitmap = MsrBitmap.allow_all()
        assert not bitmap.should_exit(MSR.IA32_APIC_BASE, is_write=True)

    def test_explicit_trap_overrides_passthrough(self):
        bitmap = MsrBitmap()
        bitmap.trap(MSR.IA32_FS_BASE, write=True, read=False)
        assert bitmap.should_exit(MSR.IA32_FS_BASE, is_write=True)
        assert not bitmap.should_exit(MSR.IA32_FS_BASE, is_write=False)

    def test_passthrough_added(self):
        bitmap = MsrBitmap()
        bitmap.passthrough(0x1234)
        assert not bitmap.should_exit(0x1234, is_write=True)


class TestIoBitmap:
    def test_default_traps(self):
        assert IoBitmap().should_exit(0x3F8)

    def test_allow(self):
        bitmap = IoBitmap()
        bitmap.allow(0x3F8)
        assert not bitmap.should_exit(0x3F8)

    def test_allow_range(self):
        bitmap = IoBitmap()
        bitmap.allow_range(0x3F8, 0x3FF)
        assert not bitmap.should_exit(0x3FB)
        assert bitmap.should_exit(0x400)

    def test_allow_all_then_trap(self):
        bitmap = IoBitmap.allow_all()
        assert not bitmap.should_exit(0x70)
        bitmap.trap(0x70)
        assert bitmap.should_exit(0x70)

    def test_bad_port(self):
        with pytest.raises(ValueError):
            IoBitmap().should_exit(0x10000)


class TestVapicPage:
    def test_icr_encode_decode_roundtrip(self):
        page = VirtualApicPage(0)
        value = page.compose_icr(5, 100, DeliveryMode.FIXED)
        assert page.decode_icr(value) == (5, 100, DeliveryMode.FIXED)
        value = page.compose_icr(3, 2, DeliveryMode.NMI)
        assert page.decode_icr(value) == (3, 2, DeliveryMode.NMI)

    def test_record_write(self):
        page = VirtualApicPage(0)
        msg = IpiMessage(0, 1, 64)
        page.record_write(msg)
        assert page.icr_writes == [msg]
        assert page.decode_icr(page.icr_value)[0] == 1


class TestPostedInterruptDescriptor:
    def test_first_post_needs_notification(self):
        desc = PostedInterruptDescriptor(242)
        assert desc.post(100) is True
        assert desc.outstanding

    def test_subsequent_posts_coalesce(self):
        desc = PostedInterruptDescriptor(242)
        desc.post(100)
        assert desc.post(101) is False
        assert desc.coalesced_posts == 1

    def test_drain_returns_sorted_and_resets(self):
        desc = PostedInterruptDescriptor(242)
        desc.post(101)
        desc.post(64)
        assert desc.drain() == [64, 101]
        assert not desc.has_pending
        assert not desc.outstanding
        assert desc.post(70) is True  # needs a fresh notification

    def test_bad_vector(self):
        with pytest.raises(ValueError):
            PostedInterruptDescriptor(242).post(256)
