"""End-to-end integration: the whole stack, composed applications,
faults under load, and multi-enclave survivability."""

import numpy as np
import pytest

from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.hw.interrupts import ExceptionVector
from repro.kitten.syscalls import Syscall
from repro.linuxhost.host import LINUX_OWNER
from repro.pisces.enclave import EnclaveState
from repro.workloads.hpcg import Hpcg
from repro.workloads.stream import Stream

GiB = 1 << 30
MiB = 1 << 20

SMALL = Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})


@pytest.fixture
def env():
    return CovirtEnvironment()


class TestComposedApplication:
    """A Hobbes-style composition: simulation enclave produces data into
    an XEMEM segment; analytics enclave consumes it; both protected."""

    def test_producer_consumer_pipeline(self, env):
        sim = env.launch(SMALL, CovirtConfig.memory_ipi(), "sim")
        analytics = env.launch(SMALL, CovirtConfig.memory_ipi(), "analytics")
        producer = sim.kernel.spawn("producer", mem_bytes=MiB)
        consumer = analytics.kernel.spawn("consumer", mem_bytes=MiB)

        segid = sim.kernel.syscall(
            producer, Syscall.XEMEM_MAKE, "pipeline",
            producer.slices[0].start, MiB,
        )
        addr = analytics.kernel.syscall(consumer, Syscall.XEMEM_ATTACH, segid)

        # Producer writes real data through the protected port.
        payload = np.arange(64, dtype=np.uint8).tobytes()
        score = sim.assignment.core_ids[0]
        sim.port.write(score, producer.slices[0].start, payload)

        # Consumer reads it back through *its* protected port.
        acore = analytics.assignment.core_ids[0]
        assert analytics.port.read(acore, addr, 64) == payload

        # Doorbell from producer to consumer over a granted vector.
        grant = env.mcp.vectors.allocate(
            dest_core=acore,
            dest_enclave_id=analytics.enclave_id,
            allowed_senders={sim.enclave_id},
            purpose="pipeline doorbell",
        )
        assert sim.port.send_ipi(score, acore, grant.vector)
        assert grant.vector in {
            i.vector for i in analytics.kernel.irq_log[acore]
        }

        # Clean teardown leaves the machine pristine.
        analytics.kernel.syscall(consumer, Syscall.XEMEM_DETACH, segid)
        env.mcp.xemem.remove(segid)
        env.mcp.shutdown_enclave(sim.enclave_id)
        env.mcp.shutdown_enclave(analytics.enclave_id)
        assert env.host.is_pristine()

    def test_pipeline_survives_producer_crash(self, env):
        sim = env.launch(SMALL, CovirtConfig.memory_ipi(), "sim")
        analytics = env.launch(SMALL, CovirtConfig.memory_ipi(), "analytics")
        producer = sim.kernel.spawn("producer", mem_bytes=MiB)
        consumer = analytics.kernel.spawn("consumer", mem_bytes=MiB)
        segid = sim.kernel.syscall(
            producer, Syscall.XEMEM_MAKE, "pipeline",
            producer.slices[0].start, MiB,
        )
        analytics.kernel.syscall(consumer, Syscall.XEMEM_ATTACH, segid)

        # The producer's kernel wanders off the reservation.
        with pytest.raises(EnclaveFaultError):
            sim.port.read(sim.assignment.core_ids[0], 50 * GiB, 8)

        assert sim.state is EnclaveState.FAILED
        assert analytics.state is EnclaveState.RUNNING
        # The MCP revoked the dead producer's segment from the consumer.
        assert not analytics.kernel.memmap.contains(producer.slices[0].start)
        notified = [
            n for n in env.mcp.notifications
            if n.enclave_id == analytics.enclave_id
        ]
        assert notified and "revoked" in notified[0].what
        # Consumer keeps computing.
        env.engine.run(Stream(), analytics)


class TestMixedFleet:
    def test_native_and_protected_coexist(self, env):
        protected = env.launch(SMALL, CovirtConfig.full(), "p")
        native = env.launch(SMALL, None, "n")
        assert protected.virt_context is not None
        assert native.virt_context is None
        r1 = env.engine.run(Hpcg(), protected)
        r0 = env.engine.run(Hpcg(), native)
        assert 0.0 < r1.overhead_vs(r0) < 0.03

    def test_serial_fault_storm_never_reaches_host(self, env):
        """Boot, crash, reclaim, repeat — ownership must be conserved
        through every cycle."""
        for i in range(4):
            enclave = env.launch(SMALL, CovirtConfig.memory_only(), f"victim{i}")
            with pytest.raises(EnclaveFaultError):
                enclave.port.read(enclave.assignment.core_ids[0], 50 * GiB, 8)
            assert enclave.state is EnclaveState.FAILED
        assert env.host.alive and env.host.verify_integrity()
        assert env.host.is_pristine()
        assert len(env.controller.fault_log) == 4

    def test_three_enclaves_one_dies_two_work(self, env):
        a = env.launch(SMALL, CovirtConfig.memory_only(), "a")
        b = env.launch(SMALL, CovirtConfig.memory_only(), "b")
        c = env.launch(SMALL, None, "c")
        with pytest.raises(EnclaveFaultError):
            b.port.raise_exception(
                b.assignment.core_ids[0], ExceptionVector.DOUBLE_FAULT
            )
        for survivor in (a, c):
            assert survivor.state is EnclaveState.RUNNING
            task = survivor.kernel.spawn("work", mem_bytes=4096)
            assert survivor.kernel.syscall(task, Syscall.GETPID) == task.tid

    def test_forwarding_keeps_working_after_sibling_death(self, env):
        victim = env.launch(SMALL, CovirtConfig.memory_only(), "victim")
        worker = env.launch(SMALL, CovirtConfig.memory_only(), "worker")
        with pytest.raises(EnclaveFaultError):
            victim.port.read(victim.assignment.core_ids[0], 50 * GiB, 8)
        task = worker.kernel.spawn("app")
        fd = worker.kernel.syscall(task, Syscall.OPEN, "/etc/hostname")
        assert worker.kernel.syscall(task, Syscall.READ, fd, 64).startswith(
            b"hobbes"
        )


class TestWorkloadOnStack:
    def test_full_sweep_one_environment(self, env):
        """All four configs, booted sequentially in one environment."""
        from repro.core.features import EVALUATION_CONFIGS

        foms = {}
        for label, config in EVALUATION_CONFIGS:
            enclave = env.launch(SMALL, config, name=label)
            result = env.engine.run(Stream(), enclave)
            foms[label] = result.fom
            env.teardown(enclave)
        assert foms["native"] >= foms["covirt-mem+ipi"] > 0

    def test_counters_populated_by_real_traffic(self, env):
        enclave = env.launch(SMALL, CovirtConfig.full())
        bsp = enclave.assignment.core_ids[0]
        enclave.port.cpuid(bsp, 1)
        enclave.port.rdmsr(bsp, 0x1B)
        env.mcp.kmod.ioctl(202, enclave.enclave_id)  # covirt PING
        counters = enclave.virt_context.aggregate_counters()
        assert counters.exits["cpuid"] == 1
        assert counters.exits["msr_read"] == 1
        assert counters.commands_serviced >= 2
        assert counters.cycles_in_vmm > 0
