"""Randomised stress: a long operation walk over the full stack.

A seeded random driver launches and destroys enclaves (mixed kernels,
mixed protection), hot-plugs memory, churns XEMEM segments, sprays
legitimate and errant IPIs, and occasionally injects faults — while a
set of global invariants is checked after every step:

* physical-memory ownership is conserved and structurally sound;
* the host never dies and its canaries are never corrupted, as long as
  every enclave is protected;
* every protected enclave's EPT covers exactly its assignment plus its
  live attachments;
* no two enclaves' assignments overlap.
"""

from __future__ import annotations

import pytest

from repro.core.faults import EnclaveFaultError
from repro.fuzz.rng import named_stream
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.linuxhost.host import LINUX_OWNER
from repro.pisces.enclave import Enclave, EnclaveState
from repro.pisces.kmod import PiscesError
from repro.hw.memory import OwnershipError

pytestmark = pytest.mark.slow

GiB = 1 << 30
MiB = 1 << 20

CONFIG_CHOICES = [
    CovirtConfig.memory_only(),
    CovirtConfig.memory_ipi(),
    CovirtConfig.full(),
]


class StressDriver:
    def __init__(self, seed: int) -> None:
        # Named stream so the printed seed alone reproduces a failure.
        self.rng = named_stream("stress", seed)
        print(f"StressDriver rng: {self.rng.describe()}")
        self.env = CovirtEnvironment()
        self.live: list[Enclave] = []
        self.segments: list[tuple[int, int]] = []  # (segid, owner_id)
        self.attachments: list[tuple[int, int]] = []  # (segid, attacher_id)
        self.hotplugged: dict[int, list] = {}
        self.faults = 0
        self.steps_taken = 0

    # -- operations ------------------------------------------------------

    def op_launch(self) -> None:
        zone = self.rng.randint(0, 1)
        kernel = self.rng.choice(["kitten", "kitten", "nautilus"])
        layout = Layout(
            "s", {zone: 1}, {zone: self.rng.choice([GiB // 2, GiB])}
        )
        spec = layout.spec(f"stress-{len(self.live)}")
        from repro.pisces.resources import ResourceSpec

        spec = ResourceSpec(
            cores_per_zone=spec.cores_per_zone,
            mem_per_zone=spec.mem_per_zone,
            name=spec.name,
            kernel_type=kernel,
        )
        config = self.rng.choice(CONFIG_CHOICES)
        try:
            enclave = self.env.controller.launch(spec, config)
        except (PiscesError, OwnershipError):
            return  # machine full — fine
        self.live.append(enclave)
        self.hotplugged[enclave.enclave_id] = []

    def op_destroy(self) -> None:
        if not self.live:
            return
        enclave = self.live.pop(self.rng.randrange(len(self.live)))
        self._forget_enclave(enclave.enclave_id)
        if enclave.state is EnclaveState.RUNNING:
            self.env.mcp.shutdown_enclave(enclave.enclave_id)

    def _forget_enclave(self, enclave_id: int) -> None:
        # Segments the enclave owned die with it (the MCP revokes every
        # remote attachment), and its own attachments are detached.
        doomed = {segid for segid, owner in self.segments if owner == enclave_id}
        self.segments = [s for s in self.segments if s[1] != enclave_id]
        self.attachments = [
            (segid, attacher)
            for segid, attacher in self.attachments
            if attacher != enclave_id and segid not in doomed
        ]
        self.hotplugged.pop(enclave_id, None)

    def op_hotplug_add(self) -> None:
        enclave = self._pick_running()
        if enclave is None:
            return
        try:
            region = self.env.mcp.kmod.add_memory(
                enclave.enclave_id, self.rng.choice([2, 4, 8]) * MiB,
                self.rng.randint(0, 1),
            )
        except OwnershipError:
            return
        self.hotplugged[enclave.enclave_id].append(region)

    def op_hotplug_remove(self) -> None:
        enclave = self._pick_running()
        if enclave is None:
            return
        regions = self.hotplugged.get(enclave.enclave_id) or []
        if not regions:
            return
        region = regions.pop(self.rng.randrange(len(regions)))
        self.env.mcp.kmod.remove_memory(enclave.enclave_id, region)

    def op_make_segment(self) -> None:
        enclave = self._pick_running()
        if enclave is None or enclave.kernel is None:
            return
        kernel = enclave.kernel
        size = self.rng.choice([64 * 1024, MiB])
        try:
            if hasattr(kernel, "kmalloc"):
                start = kernel.kmalloc(size).start
            else:
                start = kernel.kmalloc_bytes(size)
        except Exception:
            return
        seg = self.env.mcp.xemem.make(
            enclave.enclave_id, f"seg-{self.steps_taken}", start, size
        )
        self.segments.append((seg.segid, enclave.enclave_id))

    def op_attach(self) -> None:
        if not self.segments:
            return
        segid, owner_id = self.rng.choice(self.segments)
        attacher = self._pick_running(exclude=owner_id)
        if attacher is None:
            return
        if (segid, attacher.enclave_id) in self.attachments:
            return
        try:
            self.env.mcp.xemem.attach(attacher.enclave_id, segid)
        except Exception:
            return
        self.attachments.append((segid, attacher.enclave_id))

    def op_detach(self) -> None:
        if not self.attachments:
            return
        segid, attacher_id = self.attachments.pop(
            self.rng.randrange(len(self.attachments))
        )
        attacher = self.env.mcp.kmod.enclaves.get(attacher_id)
        if attacher is None or attacher.state is not EnclaveState.RUNNING:
            return
        try:
            self.env.mcp.xemem.detach(attacher_id, segid)
        except Exception:
            pass

    def op_touch_legit(self) -> None:
        enclave = self._pick_running()
        if enclave is None or not enclave.assignment.regions:
            return
        region = self.rng.choice(enclave.assignment.regions)
        offset = self.rng.randrange(max(1, region.num_pages)) * 4096
        addr = min(region.start + offset, region.end - 4096)
        enclave.port.read(enclave.assignment.core_ids[0], addr, 8)

    def op_errant_ipi(self) -> None:
        enclave = self._pick_running()
        if enclave is None:
            return
        enclave.port.send_ipi(
            enclave.assignment.core_ids[0],
            self.rng.randrange(self.env.machine.num_cores),
            self.rng.randrange(48, 200),
        )

    def op_inject_fault(self) -> None:
        enclave = self._pick_running()
        if enclave is None:
            return
        try:
            enclave.port.read(enclave.assignment.core_ids[0], 63 * GiB, 8)
        except EnclaveFaultError:
            self.faults += 1
            if enclave in self.live:
                self.live.remove(enclave)
            self._forget_enclave(enclave.enclave_id)

    def _pick_running(self, exclude: int | None = None) -> Enclave | None:
        candidates = [
            e
            for e in self.live
            if e.state is EnclaveState.RUNNING and e.enclave_id != exclude
        ]
        return self.rng.choice(candidates) if candidates else None

    # -- invariants --------------------------------------------------------

    def check_invariants(self) -> None:
        machine = self.env.machine
        machine.memory.check_invariants()
        # Ownership conservation.
        total = sum(
            end - start
            for start, end, _ in machine.memory._owners.intervals()
        )
        assert total == machine.memory.size
        # Host health (every enclave is protected, so nothing may leak).
        assert self.env.host.alive
        assert self.env.host.verify_integrity()
        # Assignment disjointness + EPT coverage.
        seen_cores: set[int] = set()
        for enclave in self.live:
            if enclave.state is not EnclaveState.RUNNING:
                continue
            overlap = seen_cores & set(enclave.assignment.core_ids)
            assert not overlap, f"core double-assignment: {overlap}"
            seen_cores |= set(enclave.assignment.core_ids)
            ctx = self.env.controller.context_for(enclave.enclave_id)
            if ctx is None or ctx.ept is None:
                continue
            ctx.ept.table.check_invariants()
            attached = sum(
                self.env.mcp.xemem.names.by_segid(segid).size
                for segid, attacher in self.attachments
                if attacher == enclave.enclave_id
            )
            assert (
                ctx.ept.mapped_bytes
                == enclave.assignment.total_memory + attached
            )

    # -- the walk ---------------------------------------------------------

    OPS = [
        ("launch", 3),
        ("destroy", 1),
        ("hotplug_add", 2),
        ("hotplug_remove", 2),
        ("make_segment", 2),
        ("attach", 3),
        ("detach", 2),
        ("touch_legit", 4),
        ("errant_ipi", 2),
        ("inject_fault", 1),
    ]

    def run(self, steps: int) -> None:
        names = [name for name, weight in self.OPS for _ in range(weight)]
        for _ in range(steps):
            self.steps_taken += 1
            getattr(self, f"op_{self.rng.choice(names)}")()
            self.check_invariants()


@pytest.mark.parametrize("seed", [1, 7, 42, 1234])
def test_stress_walk(seed):
    driver = StressDriver(seed)
    driver.run(steps=120)
    # The walk must have actually exercised the machine.
    assert driver.steps_taken == 120
    # Final teardown returns the machine to pristine.
    for enclave in list(driver.live):
        if enclave.state is EnclaveState.RUNNING:
            driver.env.mcp.shutdown_enclave(enclave.enclave_id)
    assert driver.env.host.is_pristine()


def test_stress_faults_happen_and_are_contained():
    driver = StressDriver(seed=99)
    driver.run(steps=200)
    assert driver.faults > 0  # the walk did crash enclaves
    assert driver.env.host.alive
    assert len(driver.env.controller.fault_log) == driver.faults
