"""Cost model, counters, and the detour sampler."""

import pytest

from repro.hw.memory import PAGE_SIZE, PAGE_SIZE_1G, PAGE_SIZE_2M
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.perf.counters import PerfCounters
from repro.perf.sampling import DetourSampler, NoiseSource


class TestCostModel:
    def test_ept_extra_decreases_with_page_size(self):
        costs = DEFAULT_COSTS
        assert (
            costs.ept_extra_per_miss(PAGE_SIZE)
            > costs.ept_extra_per_miss(PAGE_SIZE_2M)
            > costs.ept_extra_per_miss(PAGE_SIZE_1G)
        )

    def test_exit_cost_with_emulation(self):
        costs = DEFAULT_COSTS
        assert costs.exit_cost(emulation=True) > costs.exit_cost()

    def test_attach_cost_grows_with_size(self):
        costs = DEFAULT_COSTS
        small = costs.xemem_attach_cycles(1 << 20, covirt=False)
        large = costs.xemem_attach_cycles(1 << 30, covirt=False)
        assert large > small

    def test_covirt_attach_overhead_shrinks_relatively(self):
        """The Fig. 4 claim: the Covirt term is bounded, so its relative
        cost vanishes as regions grow."""
        costs = DEFAULT_COSTS
        rel = []
        for size in (1 << 20, 1 << 25, 1 << 30):
            off = costs.xemem_attach_cycles(size, covirt=False)
            on = costs.xemem_attach_cycles(size, covirt=True)
            rel.append((on - off) / off)
        assert rel == sorted(rel, reverse=True)
        assert rel[-1] < 0.01

    def test_model_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.vm_exit_round_trip = 1

    def test_custom_model(self):
        costs = CostModel(vm_exit_round_trip=5000)
        assert costs.exit_cost() == 5000


class TestPerfCounters:
    def test_record_and_totals(self):
        counters = PerfCounters()
        counters.record_exit("ept_violation", 1600)
        counters.record_exit("ept_violation", 1600)
        counters.record_exit("cpuid", 1600)
        assert counters.total_exits == 3
        assert counters.exits["ept_violation"] == 2
        assert counters.cycles_in_vmm == 4800

    def test_merge(self):
        a, b = PerfCounters(), PerfCounters()
        a.record_exit("hlt", 100)
        a.ipis_filtered = 2
        b.record_exit("hlt", 100)
        b.tlb_flushes = 3
        merged = a.merge(b)
        assert merged.exits["hlt"] == 2
        assert merged.ipis_filtered == 2
        assert merged.tlb_flushes == 3


class TestDetourSampler:
    def test_detects_all_planted_events(self):
        sampler = DetourSampler(loop_cycles=10)
        trace = sampler.run(
            1_000_000, [NoiseSource("tick", 100_000, 5_000)]
        )
        assert trace.count == 9  # events at 100k..900k

    def test_subthreshold_events_invisible(self):
        sampler = DetourSampler(loop_cycles=10, threshold_factor=8)
        trace = sampler.run(1_000_000, [NoiseSource("tiny", 100_000, 20)])
        assert trace.count == 0

    def test_detour_duration_reflects_cost(self):
        sampler = DetourSampler(loop_cycles=10)
        trace = sampler.run(500_000, [NoiseSource("tick", 100_000, 7_000)])
        assert all(abs(d - 7_010) < 50 for _, d in trace.detours)

    def test_noise_fraction(self):
        sampler = DetourSampler(loop_cycles=10)
        trace = sampler.run(1_000_000, [NoiseSource("tick", 100_000, 10_000)])
        assert trace.noise_fraction == pytest.approx(0.09, rel=0.05)

    def test_multiple_sources_merge(self):
        sampler = DetourSampler(loop_cycles=10)
        trace = sampler.run(
            1_000_000,
            [NoiseSource("a", 300_000, 5_000), NoiseSource("b", 400_000, 5_000)],
        )
        assert trace.count == 3 + 2

    def test_histogram_buckets(self):
        sampler = DetourSampler(loop_cycles=10)
        trace = sampler.run(1_000_000, [NoiseSource("tick", 100_000, 5_000)])
        hist = trace.histogram([1.0, 10.0])
        assert hist["<10.0us"] == trace.count

    def test_bad_source_rejected(self):
        with pytest.raises(ValueError):
            NoiseSource("x", 0, 100)

    def test_empty_sources_silent(self):
        trace = DetourSampler().run(1_000_000, [])
        assert trace.count == 0
        assert trace.noise_fraction == 0.0
