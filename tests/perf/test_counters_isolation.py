"""Regression: all performance/observability state is instance-scoped.

Two environments driven *interleaved* must never cross-contaminate —
not PerfCounters on the hypervisors, not the per-machine metrics
registry, not the span tracer.  A module-global anywhere in
``perf/counters.py`` or ``repro.obs`` would fail here.
"""

from __future__ import annotations

import pytest

from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.hw.ioports import SERIAL_COM1
from repro.obs import metric_names
from repro.obs.scenario import protection_probe
from repro.perf.counters import PerfCounters

GiB = 1 << 30
LAYOUT = Layout("1c/1n", {0: 1}, {0: GiB})


@pytest.fixture
def pair():
    return CovirtEnvironment(), CovirtEnvironment()


class TestPerfCountersScoping:
    def test_fresh_instances_share_nothing(self):
        a, b = PerfCounters(), PerfCounters()
        a.record_exit("cpuid", 100)
        a.exits["cpuid"] += 1  # even the Counter mapping must be per-instance
        assert b.total_exits == 0
        assert b.cycles_in_vmm == 0
        assert a.exits is not b.exits

    def test_merge_does_not_alias(self):
        a, b = PerfCounters(), PerfCounters()
        a.record_exit("cpuid", 100)
        merged = a.merge(b)
        merged.exits["cpuid"] += 10
        assert a.exits["cpuid"] == 1


class TestInterleavedMachines:
    def test_interleaved_exits_stay_per_machine(self, pair):
        env_a, env_b = pair
        enclave_a = env_a.launch(LAYOUT, CovirtConfig.full(), name="a")
        enclave_b = env_b.launch(LAYOUT, CovirtConfig.full(), name="b")
        core_a = enclave_a.assignment.core_ids[0]
        core_b = enclave_b.assignment.core_ids[0]
        # Interleave: A, B, A, B, ... with different exit mixes.
        for _ in range(3):
            enclave_a.port.cpuid(core_a, 0)
            enclave_b.port.io_in(core_b, SERIAL_COM1)
        enclave_a.port.cpuid(core_a, 0)

        exits_a = env_a.machine.obs.metrics.exit_counts_by_reason()
        exits_b = env_b.machine.obs.metrics.exit_counts_by_reason()
        assert exits_a == {"cpuid": 4}
        assert exits_b == {"io_instruction": 3}

        counters_a = enclave_a.virt_context.aggregate_counters()
        counters_b = enclave_b.virt_context.aggregate_counters()
        assert counters_a.exits == {"cpuid": 4}
        assert counters_b.exits == {"io_instruction": 3}

    def test_interleaved_probe_and_idle_machine(self, pair):
        env_a, env_b = pair
        enclave_a = env_a.launch(LAYOUT, CovirtConfig.full(), name="a")
        protection_probe(env_a, enclave_a)
        # B never ran anything: its registry and tracer must be silent.
        assert env_b.machine.obs.metrics.exit_counts_by_reason() == {}
        assert len(env_b.machine.obs.tracer) == 0
        assert env_a.machine.obs.metrics.exit_counts_by_reason() != {}

    def test_span_streams_do_not_interleave(self, pair):
        env_a, env_b = pair
        enclave_a = env_a.launch(LAYOUT, CovirtConfig.full(), name="a")
        enclave_b = env_b.launch(LAYOUT, CovirtConfig.full(), name="b")
        protection_probe(env_a, enclave_a)
        protection_probe(env_b, enclave_b)
        names_a = env_a.machine.obs.tracer.names()
        names_b = env_b.machine.obs.tracer.names()
        assert names_a == names_b  # same deterministic activity...
        spans_a = set(map(id, env_a.machine.obs.tracer.spans))
        spans_b = set(map(id, env_b.machine.obs.tracer.spans))
        assert not spans_a & spans_b  # ...recorded in disjoint tracers

    def test_metric_objects_are_per_registry(self, pair):
        env_a, env_b = pair
        counter_a = env_a.machine.obs.metrics.counter(metric_names.EXITS)
        counter_b = env_b.machine.obs.metrics.counter(metric_names.EXITS)
        assert counter_a is not counter_b
        counter_a.inc(reason="cpuid")
        assert counter_b.total() == 0
