"""Hypervisor event traces."""

import pytest

from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.perf.trace import EventTrace, TraceKind

GiB = 1 << 30
LAYOUT = Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})


class TestEventTrace:
    def test_records_in_order(self):
        trace = EventTrace()
        trace.record(10, TraceKind.LAUNCH, "go")
        trace.record(20, TraceKind.EXIT, "cpuid")
        assert [r.tsc for r in trace.tail()] == [10, 20]

    def test_ring_bounds_and_counts_drops(self):
        trace = EventTrace(capacity=4)
        for i in range(10):
            trace.record(i, TraceKind.EXIT, str(i))
        assert len(trace) == 4
        assert trace.dropped == 6
        assert [r.tsc for r in trace.tail()] == [6, 7, 8, 9]

    def test_render(self):
        trace = EventTrace()
        trace.record(123, TraceKind.DROP, "IPI → core 2")
        assert "drop" in trace.render_tail()
        assert "IPI" in trace.render_tail()

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)


class TestHypervisorTracing:
    @pytest.fixture
    def env(self):
        return CovirtEnvironment()

    def test_launch_recorded(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.full())
        hv = enclave.virt_context.hypervisors[enclave.assignment.core_ids[0]]
        kinds = [r.kind for r in hv.trace.tail()]
        assert TraceKind.LAUNCH in kinds

    def test_exit_and_drop_recorded(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.memory_ipi())
        bsp = enclave.assignment.core_ids[0]
        enclave.port.send_ipi(bsp, 0, 199)  # dropped
        hv = enclave.virt_context.hypervisors[bsp]
        kinds = [r.kind for r in hv.trace.tail()]
        assert TraceKind.EXIT in kinds
        assert TraceKind.DROP in kinds

    def test_posted_delivery_recorded(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.memory_ipi())
        env.mcp.channels[enclave.enclave_id].host_send("ping", None)
        bsp = enclave.assignment.core_ids[0]
        hv = enclave.virt_context.hypervisors[bsp]
        assert any(r.kind is TraceKind.POSTED for r in hv.trace.tail())

    def test_trace_tail_lands_in_dossier(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.memory_only())
        bsp = enclave.assignment.core_ids[0]
        with pytest.raises(EnclaveFaultError):
            enclave.port.read(bsp, 50 * GiB, 8)
        report = env.controller.dossiers[enclave.enclave_id].render()
        assert "hypervisor trace" in report
        assert "terminate" in report

    def test_timestamps_monotone(self, env):
        enclave = env.launch(LAYOUT, CovirtConfig.full())
        bsp = enclave.assignment.core_ids[0]
        for _ in range(5):
            enclave.port.cpuid(bsp, 0)
        hv = enclave.virt_context.hypervisors[bsp]
        stamps = [r.tsc for r in hv.trace.tail(32)]
        assert stamps == sorted(stamps)
