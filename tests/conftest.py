"""Shared fixtures for the Covirt reproduction test suite."""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite checked-in golden trace files instead of asserting"
        " against them (use after an intentional instrumentation change)",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    """Everything not explicitly marked ``slow`` is tier-1."""
    for item in items:
        if item.get_closest_marker("slow") is None:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--update-golden"))

from repro.core.controller import CovirtController
from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.hobbes.master import MasterControlProcess
from repro.hw.machine import Machine, MachineConfig
from repro.linuxhost.host import LinuxHost
from repro.pisces.resources import ResourceSpec

GiB = 1 << 30
MiB = 1 << 20


@pytest.fixture
def machine() -> Machine:
    """The paper's dual-socket testbed (memory is lazily backed, so
    building it is cheap)."""
    return Machine(MachineConfig.paper_testbed())


@pytest.fixture
def small_machine() -> Machine:
    return Machine(MachineConfig.small())


@pytest.fixture
def host(machine: Machine) -> LinuxHost:
    return LinuxHost(machine)


@pytest.fixture
def mcp(machine: Machine, host: LinuxHost) -> MasterControlProcess:
    return MasterControlProcess(machine, host)


@pytest.fixture
def controller(mcp: MasterControlProcess) -> CovirtController:
    return CovirtController(mcp)


@pytest.fixture
def env() -> CovirtEnvironment:
    return CovirtEnvironment()


@pytest.fixture
def small_layout() -> Layout:
    """2 cores / 2 zones, 2 GiB — quick to boot, NUMA-interesting."""
    return Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})


def make_spec(
    ncores: int = 2, nzones: int = 2, mem: int = 2 * GiB, name: str = "test"
) -> ResourceSpec:
    return ResourceSpec.evaluation_layout(ncores, nzones, mem, name)


@pytest.fixture
def native_enclave(env: CovirtEnvironment, small_layout: Layout):
    return env.launch(small_layout, None, name="native")


@pytest.fixture
def protected_enclave(env: CovirtEnvironment, small_layout: Layout):
    return env.launch(small_layout, CovirtConfig.full(), name="protected")
